(* KV serving layer (DESIGN.md §12): wire protocol, bounded queues,
   end-to-end request/reply, the overload defences (deadlines,
   queue-full backpressure, p99 admission control, slow-loris drops),
   graceful drain under live traffic, and the load generator's
   zero-silent-drop ledger. *)

module Protocol = Kv.Protocol
module Bqueue = Kv.Bqueue
module Loadgen = Kv.Loadgen
module Metrics = Ct_util.Metrics
module M = Cachetrie.Make (Ct_util.Hashing.Int_key)
module S = Kv.Server.Make (M)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let small_config ?(workers = 2) ?(queue = 64) () =
  {
    (Kv.Server.default_config ()) with
    Kv.Server.workers;
    queue_capacity = queue;
    tick_interval = 0.005;
  }

let with_server ?config ?progress f =
  let map = M.create () in
  let srv = S.start ?config ?progress map in
  Fun.protect
    ~finally:(fun () -> ignore (S.drain ~timeout:5.0 srv))
    (fun () -> f srv map)

let with_client srv f =
  let c = Kv.Client.connect ~port:(S.port srv) () in
  Fun.protect ~finally:(fun () -> Kv.Client.close c) (fun () -> f c)

(* ------------------------------ protocol --------------------------- *)

let strip_prefix frame =
  Bytes.sub frame 4 (Bytes.length frame - 4)

let test_protocol_roundtrip () =
  let ops =
    [
      Protocol.Ping;
      Protocol.Get 42;
      Protocol.Get (-7);
      Protocol.Put (0, "");
      Protocol.Put (max_int, String.make 100 'v');
      Protocol.Remove min_int;
    ]
  in
  List.iteri
    (fun i op ->
      let req = { Protocol.id = i + 1; deadline_ns = i * 1000; op; trace = 0 } in
      match Protocol.decode_request (strip_prefix (Protocol.encode_request req)) with
      | Ok got ->
          check_bool "request roundtrips" true (got = req)
      | Error e -> Alcotest.failf "decode_request: %s" e)
    ops;
  let replies =
    [
      Protocol.Value "hello";
      Protocol.Value "";
      Protocol.Nil;
      Protocol.Stored true;
      Protocol.Stored false;
      Protocol.Removed;
      Protocol.Pong;
      Protocol.Overloaded Protocol.Queue_full;
      Protocol.Overloaded Protocol.Latency_breach;
      Protocol.Deadline_exceeded;
      Protocol.Shutting_down;
      Protocol.Read_only;
      Protocol.Bad_request "nope";
      Protocol.Server_error "boom";
    ]
  in
  List.iteri
    (fun i r ->
      let id = (i * 7919) land 0xFFFF_FFFF in
      match Protocol.decode_reply (strip_prefix (Protocol.encode_reply ~id r)) with
      | Ok (gid, got) ->
          check_int "reply id echoes" id gid;
          check_bool "reply roundtrips" true (got = r)
      | Error e -> Alcotest.failf "decode_reply: %s" e)
    replies;
  check_string "label" "overloaded_queue_full"
    (Protocol.reply_label (Protocol.Overloaded Protocol.Queue_full));
  (* Corrupt opcode decodes to an error, not an exception. *)
  let bad = strip_prefix (Protocol.encode_request
      { Protocol.id = 1; deadline_ns = 0; op = Protocol.Ping; trace = 0 }) in
  Bytes.set bad 0 '\xee';
  check_bool "bad opcode is Error" true
    (Result.is_error (Protocol.decode_request bad))

(* Trace extension (opcode bit 6): sampled and unsampled contexts ride
   the frame, a truncated extension degrades to an untraced request
   rather than a decode error, and the pre-trace frame format still
   parses byte-for-byte. *)
let test_protocol_trace_propagation () =
  let roundtrip req =
    match
      Protocol.decode_request (strip_prefix (Protocol.encode_request req))
    with
    | Ok got -> got
    | Error e -> Alcotest.failf "decode_request: %s" e
  in
  let sctx = Obs.Trace.make ~sampled:true 0x1234_5678_9ABC in
  let req =
    { Protocol.id = 9; deadline_ns = 77; op = Protocol.Get 3; trace = sctx }
  in
  let got = roundtrip req in
  check_bool "sampled trace roundtrips" true (got = req);
  check_bool "sampled flag survives the wire" true
    (Obs.Trace.sampled got.Protocol.trace);
  check_int "trace id survives the wire" 0x1234_5678_9ABC
    (Obs.Trace.id got.Protocol.trace);
  let uctx = Obs.Trace.make ~sampled:false 42 in
  let got = roundtrip { req with Protocol.trace = uctx } in
  check_bool "unsampled context roundtrips" true (got.Protocol.trace = uctx);
  check_bool "unsampled stays unsampled" true
    (not (Obs.Trace.sampled got.Protocol.trace));
  (* Put frames carry the extension between the key and the value. *)
  let put =
    { Protocol.id = 2; deadline_ns = 0; op = Protocol.Put (5, "five");
      trace = sctx }
  in
  check_bool "traced put roundtrips" true (roundtrip put = put);
  (* Trace bit set but too few bytes for the 9-byte extension: the
     request decodes untraced — corrupted metadata must not poison the
     connection. *)
  let p =
    strip_prefix
      (Protocol.encode_request
         { Protocol.id = 3; deadline_ns = 0; op = Protocol.Get 7;
           trace = sctx })
  in
  let cut = Bytes.sub p 0 (Bytes.length p - 4) in
  (match Protocol.decode_request cut with
  | Ok got ->
      check_bool "truncated extension degrades to untraced" true
        (got.Protocol.trace = Obs.Trace.none);
      check_bool "request fields still decode" true
        (got.Protocol.op = Protocol.Get 7)
  | Error e -> Alcotest.failf "truncated extension must not poison: %s" e);
  (* An untraced request emits the pre-trace format: bit 6 clear, no
     extension bytes — old readers and old frames interoperate. *)
  let old =
    strip_prefix
      (Protocol.encode_request
         { Protocol.id = 4; deadline_ns = 0; op = Protocol.Get 7; trace = 0 })
  in
  check_bool "untraced frame has no extension bit" true
    (Char.code (Bytes.get old 0) land 0x40 = 0);
  let traced =
    strip_prefix
      (Protocol.encode_request
         { Protocol.id = 4; deadline_ns = 0; op = Protocol.Get 7;
           trace = sctx })
  in
  check_int "extension adds exactly 9 bytes"
    (Bytes.length old + 9) (Bytes.length traced);
  match Protocol.decode_request old with
  | Ok got ->
      check_bool "pre-trace format parses untraced" true
        (got.Protocol.trace = Obs.Trace.none)
  | Error e -> Alcotest.failf "old format: %s" e

(* Frames reassemble across arbitrarily chunked delivery, and an
   oversized announced length poisons the connection. *)
let test_reader_framing () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with _ -> ());
      try Unix.close b with _ -> ())
    (fun () ->
      let f1 =
        Protocol.encode_request
          { Protocol.id = 1; deadline_ns = 0; op = Protocol.Put (7, "seven"); trace = 0 }
      and f2 =
        Protocol.encode_request
          { Protocol.id = 2; deadline_ns = 9; op = Protocol.Get 7; trace = 0 }
      in
      let all = Bytes.cat f1 f2 in
      (* Trickle both frames 3 bytes at a time from a helper thread. *)
      let th =
        Thread.create
          (fun () ->
            let len = Bytes.length all in
            let off = ref 0 in
            while !off < len do
              let n = min 3 (len - !off) in
              ignore (Unix.write a all !off n);
              off := !off + n
            done)
          ()
      in
      let r = Protocol.Reader.create () in
      (match Protocol.Reader.read_frame r b with
      | Some p ->
          check_bool "frame 1" true
            (Protocol.decode_request p
            = Ok { Protocol.id = 1; deadline_ns = 0; op = Protocol.Put (7, "seven"); trace = 0 })
      | None -> Alcotest.fail "expected frame 1");
      (match Protocol.Reader.read_frame r b with
      | Some p ->
          check_bool "frame 2" true
            (Protocol.decode_request p
            = Ok { Protocol.id = 2; deadline_ns = 9; op = Protocol.Get 7; trace = 0 })
      | None -> Alcotest.fail "expected frame 2");
      Thread.join th;
      check_bool "no partial frame pending" false (Protocol.Reader.pending r);
      (* Announce a frame bigger than max_frame: must raise, not
         allocate or wait for a gigabyte. *)
      let huge = Bytes.create 4 in
      Bytes.set_int32_be huge 0 (Int32.of_int (Protocol.max_frame + 1));
      ignore (Unix.write a huge 0 4);
      (match Protocol.Reader.read_frame r b with
      | exception Protocol.Protocol_error _ -> ()
      | _ -> Alcotest.fail "oversized frame must poison the stream"))

(* Traced frames through the same trickle-fed reader: the 9-byte
   extension straddles chunk boundaries like any other field and the
   context emerges intact; untraced frames interleave untouched. *)
let test_reader_traced_framing () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with _ -> ());
      try Unix.close b with _ -> ())
    (fun () ->
      let ctx1 = Obs.Trace.make ~sampled:true 0xFACE
      and ctx2 = Obs.Trace.make ~sampled:false 0xBEEF in
      let f1 =
        Protocol.encode_request
          { Protocol.id = 1; deadline_ns = 0; op = Protocol.Put (7, "seven");
            trace = ctx1 }
      and f2 =
        Protocol.encode_request
          { Protocol.id = 2; deadline_ns = 9; op = Protocol.Get 7;
            trace = ctx2 }
      and f3 =
        Protocol.encode_request
          { Protocol.id = 3; deadline_ns = 0; op = Protocol.Ping; trace = 0 }
      in
      let all = Bytes.cat f1 (Bytes.cat f2 f3) in
      let th =
        Thread.create
          (fun () ->
            let len = Bytes.length all in
            let off = ref 0 in
            while !off < len do
              let n = min 3 (len - !off) in
              ignore (Unix.write a all !off n);
              off := !off + n
            done)
          ()
      in
      let r = Protocol.Reader.create () in
      let read_req () =
        match Protocol.Reader.read_frame r b with
        | Some p -> (
            match Protocol.decode_request p with
            | Ok q -> q
            | Error e -> Alcotest.failf "decode_request: %s" e)
        | None -> Alcotest.fail "unexpected EOF"
      in
      let q1 = read_req () in
      let q2 = read_req () in
      let q3 = read_req () in
      Thread.join th;
      check_bool "sampled trace survives trickled reassembly" true
        (q1.Protocol.trace = ctx1);
      check_bool "traced put op intact" true
        (q1.Protocol.op = Protocol.Put (7, "seven"));
      check_bool "unsampled trace survives trickled reassembly" true
        (q2.Protocol.trace = ctx2);
      check_bool "untraced frame interleaves cleanly" true
        (q3.Protocol.trace = Obs.Trace.none
        && q3.Protocol.op = Protocol.Ping))

(* ------------------------------- bqueue ---------------------------- *)

let test_bqueue_basics () =
  let q = Bqueue.create ~capacity:2 in
  check_bool "push 1" true (Bqueue.try_push q 1);
  check_bool "push 2" true (Bqueue.try_push q 2);
  check_bool "push to full queue refused" false (Bqueue.try_push q 3);
  let into = Array.make 4 None in
  (match Bqueue.pop_batch q ~max:4 ~into with
  | Some 2 ->
      check_bool "fifo" true (into.(0) = Some 1 && into.(1) = Some 2)
  | other ->
      Alcotest.failf "expected Some 2, got %s"
        (match other with
        | None -> "None"
        | Some n -> "Some " ^ string_of_int n));
  (* A tick on an empty open queue wakes the consumer with 0 items —
     the idle-heartbeat path. *)
  let popped = ref (-1) in
  let th =
    Thread.create
      (fun () ->
        match Bqueue.pop_batch q ~max:4 ~into with
        | Some n -> popped := n
        | None -> popped := -2)
      ()
  in
  Unix.sleepf 0.02;
  Bqueue.tick q;
  Thread.join th;
  check_int "tick wakes an idle consumer with an empty batch" 0 !popped;
  (* close: refuses new work but still delivers what it holds. *)
  check_bool "push before close" true (Bqueue.try_push q 9);
  Bqueue.close q;
  check_bool "push after close refused" false (Bqueue.try_push q 10);
  (match Bqueue.pop_batch q ~max:4 ~into with
  | Some 1 -> check_bool "queued item survives close" true (into.(0) = Some 9)
  | _ -> Alcotest.fail "expected the queued item after close");
  check_bool "closed and drained" true (Bqueue.pop_batch q ~max:4 ~into = None)

(* ----------------------------- end to end -------------------------- *)

let test_e2e_basic () =
  with_server ~config:(small_config ()) (fun srv _map ->
      with_client srv (fun c ->
          check_bool "ping" true (Kv.Client.ping c);
          check_bool "get miss" true (Kv.Client.get c 1 = Protocol.Nil);
          check_bool "fresh put" true (Kv.Client.put c 1 "one" = Protocol.Stored false);
          check_bool "get hit" true (Kv.Client.get c 1 = Protocol.Value "one");
          check_bool "replacing put" true
            (Kv.Client.put c 1 "uno" = Protocol.Stored true);
          check_bool "remove hit" true (Kv.Client.remove c 1 = Protocol.Removed);
          check_bool "remove miss" true (Kv.Client.remove c 1 = Protocol.Nil);
          check_bool "executed counted" true (S.stat srv "executed" >= 5));
      check_bool "drain flushes" true (S.drain srv);
      check_bool "drain idempotent" true (S.drain srv))

(* A request that waits out its deadline behind a stalled worker gets
   the typed [Deadline_exceeded], and the late request never executes. *)
let test_deadline_exceeded () =
  let stall =
    Chaos.Net.stall_sites ~one_in:1 ~max_stalls:1 ~duration:0.4
      "server.worker."
  in
  Fun.protect ~finally:Chaos.clear (fun () ->
      with_server ~config:(small_config ~workers:1 ()) (fun srv map ->
          ignore (M.add map 5 "five");
          (* Occupy the only worker: its first execution parks 0.4s. *)
          let blocker =
            Thread.create
              (fun () ->
                with_client srv (fun c -> ignore (Kv.Client.get c 5)))
              ()
          in
          Unix.sleepf 0.1;
          with_client srv (fun c ->
              match Kv.Client.get c ~deadline_ns:50_000_000 5 with
              | Protocol.Deadline_exceeded -> ()
              | r ->
                  Alcotest.failf "expected Deadline_exceeded, got %s"
                    (Protocol.reply_label r));
          Thread.join blocker;
          check_bool "stall fired" true (Chaos.Net.stalls_fired stall >= 1);
          check_bool "deadline miss counted" true
            (S.stat srv "deadline_expired" >= 1)))

(* Pipelined flood against a stalled single worker with a tiny queue:
   the overflow comes back as typed [Overloaded Queue_full] replies —
   every id answered exactly once, none silently dropped — and the
   budget exhaustion surfaces on the served map's uniform stats. *)
let test_queue_full_shed () =
  ignore
    (Chaos.Net.stall_sites ~one_in:1 ~max_stalls:1 ~duration:0.5
       "server.worker.");
  Fun.protect ~finally:Chaos.clear (fun () ->
      let config =
        { (small_config ~workers:1 ~queue:2 ()) with Kv.Server.enqueue_budget = 1 }
      in
      with_server ~config (fun srv map ->
          let n = 16 in
          let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
          Fun.protect
            ~finally:(fun () -> try Unix.close fd with _ -> ())
            (fun () ->
              Unix.connect fd
                (Unix.ADDR_INET (Unix.inet_addr_loopback, S.port srv));
              Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0;
              (* Same key → same worker queue: all behind the stall. *)
              for id = 1 to n do
                let f =
                  Protocol.encode_request
                    { Protocol.id; deadline_ns = 0; op = Protocol.Get 3; trace = 0 }
                in
                ignore (Unix.write fd f 0 (Bytes.length f))
              done;
              let seen = Array.make (n + 1) 0 in
              let sheds = ref 0 in
              let r = Protocol.Reader.create () in
              for _ = 1 to n do
                match Protocol.Reader.read_frame r fd with
                | Some p -> (
                    match Protocol.decode_reply p with
                    | Ok (id, reply) ->
                        seen.(id) <- seen.(id) + 1;
                        if reply = Protocol.Overloaded Protocol.Queue_full then
                          incr sheds
                    | Error e -> Alcotest.failf "bad reply: %s" e)
                | None -> Alcotest.fail "connection closed early"
              done;
              for id = 1 to n do
                check_int
                  (Printf.sprintf "id %d answered exactly once" id)
                  1 seen.(id)
              done;
              check_bool "some requests were shed" true (!sheds >= 1);
              check_bool "some requests were executed" true (!sheds < n);
              check_int "server counted the sheds" !sheds
                (S.stat srv "shed_queue_full");
              check_bool "retry budget exhaustion on the map's stats" true
                (match List.assoc_opt "retry_exhausted" (M.stats map) with
                | Some v -> v >= 1
                | None -> false))))

(* Admission control: with the p99 bound set below the floor of real
   request latency, the control loop starts shedding with typed
   [Overloaded Latency_breach] replies, and recovers (duty-cycle
   probing) rather than shedding forever. *)
let test_latency_breach_shed () =
  let config =
    {
      (* The ticker engages shedding only when >= p99_window requests
         complete within one tick, so a synchronous client must sustain
         window/tick round-trips per second for the breach to be seen
         at all.  window 2 over a 20ms tick needs one round-trip per
         10ms — slack enough for a loaded 1-core host, where the
         original 4-per-5ms bar was flaky. *)
      (small_config ~workers:2 ())
      with Kv.Server.p99_bound_ns = 1; p99_window = 2; tick_interval = 0.02;
    }
  in
  with_server ~config (fun srv _map ->
      with_client srv (fun c ->
          (* Feed the histogram window. *)
          for i = 1 to 50 do
            ignore (Kv.Client.put c i "v")
          done;
          let breached = ref false in
          let attempts = ref 0 in
          while (not !breached) && !attempts < 500 do
            incr attempts;
            (match Kv.Client.get c (!attempts mod 50) with
            | Protocol.Overloaded Protocol.Latency_breach -> breached := true
            | _ -> ());
            if !attempts mod 20 = 0 then Unix.sleepf 0.01
          done;
          check_bool "latency-breach shed observed" true !breached;
          check_bool "counted" true (S.stat srv "shed_latency_breach" >= 1);
          (* Duty cycle: once traffic pauses, the thin window turns
             shedding back off. *)
          let recovered = ref false in
          let tries = ref 0 in
          while (not !recovered) && !tries < 100 do
            incr tries;
            Unix.sleepf 0.01;
            if not (S.shedding srv) then recovered := true
          done;
          check_bool "shedding recovers when the episode ends" true !recovered))

(* Slow-loris: a peer that trickles a frame slower than the receive
   timeout loses its connection (typed counter, thread freed). *)
let test_slow_loris_dropped () =
  let config = { (small_config ()) with Kv.Server.idle_timeout = 0.1 } in
  with_server ~config (fun srv _map ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with _ -> ())
        (fun () ->
          Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, S.port srv));
          let f =
            Protocol.encode_request
              { Protocol.id = 1; deadline_ns = 0; op = Protocol.Get 1; trace = 0 }
          in
          (* Half a frame, then silence past the idle timeout. *)
          ignore (Unix.write fd f 0 (Bytes.length f / 2));
          let deadline = Unix.gettimeofday () +. 5.0 in
          let dropped () = S.stat srv "conns_dropped_slow" >= 1 in
          while (not (dropped ())) && Unix.gettimeofday () < deadline do
            Unix.sleepf 0.02
          done;
          check_bool "loris connection dropped" true (dropped ());
          (* The server still serves healthy clients afterwards. *)
          with_client srv (fun c -> check_bool "still alive" true (Kv.Client.ping c))))

(* ------------------------------ loadgen ---------------------------- *)

let test_loadgen_trace_roundtrip () =
  let plan =
    {
      Loadgen.default_plan with
      Loadgen.seed = 77;
      n = 1234;
      conns = 3;
      rate = 4567.25;
      deadline_ns = 9_000_000;
      trace_one_in = 5;
      net =
        { Chaos.Net.default with Chaos.Net.seed = 99; drop_one_in = 123 };
    }
  in
  (match Loadgen.of_string (Loadgen.to_string plan) with
  | Ok p -> check_bool "plan roundtrips" true (p = plan)
  | Error e -> Alcotest.failf "of_string: %s" e);
  check_bool "bad header rejected" true
    (Result.is_error (Loadgen.of_string "bogus v9\nseed=1"));
  check_bool "unknown key rejected" true
    (Result.is_error (Loadgen.of_string "kvload-trace v1\nwat=1"));
  check_bool "bad int rejected" true
    (Result.is_error (Loadgen.of_string "kvload-trace v1\nseed=xyz"))

(* Trace minting is a pure function of the plan: every request gets a
   deterministic id, every [trace_one_in]-th is head-sampled, and the
   ledger's trace ids regenerate from the serialized plan alone. *)
let test_loadgen_trace_minting () =
  let mk () =
    { Loadgen.default_plan with Loadgen.seed = 11; n = 100; trace_one_in = 4 }
  in
  let plan = mk () and plan' = mk () in
  (match Loadgen.of_string (Loadgen.to_string plan) with
  | Ok p -> check_int "trace_one_in survives serialization" 4 p.Loadgen.trace_one_in
  | Error e -> Alcotest.failf "of_string: %s" e);
  let sampled = ref 0 in
  for i = 0 to plan.Loadgen.n - 1 do
    let ctx = Loadgen.ctx_for plan i in
    check_bool "ctx_for is deterministic" true (ctx = Loadgen.ctx_for plan' i);
    check_bool "every request carries a nonzero id" true
      (Obs.Trace.id ctx <> 0);
    check_int "trace_id_for matches ctx_for" (Obs.Trace.id ctx)
      (Loadgen.trace_id_for plan i);
    if Obs.Trace.sampled ctx then incr sampled
  done;
  check_int "exactly 1-in-4 head-sampled" 25 !sampled;
  check_bool "ids depend on the seed" true
    (Loadgen.trace_id_for plan 0
    <> Loadgen.trace_id_for { plan with Loadgen.seed = 12 } 0);
  check_bool "tracing off mints none" true
    (Loadgen.ctx_for { plan with Loadgen.trace_one_in = 0 } 0
    = Obs.Trace.none)

(* End to end through a live server: a sampled client request leaves a
   complete server-side span tree in the installed sink under its own
   trace id, an unsampled one carries its id but records nothing, and
   a traced loadgen run fills the ledger's trace-id column. *)
let test_e2e_trace_spans () =
  let tr = Obs.Trace.create ~size:4096 () in
  Obs.Trace.install tr;
  Fun.protect
    ~finally:(fun () -> Obs.Trace.uninstall ())
    (fun () ->
      with_server ~config:(small_config ~queue:256 ()) (fun srv _map ->
          with_client srv (fun c ->
              let sctx = Obs.Trace.make ~sampled:true 0xD00D in
              (match Kv.Client.request c ~trace:sctx (Protocol.Put (1, "one")) with
              | Protocol.Stored _ -> ()
              | r -> Alcotest.failf "put: %s" (Protocol.reply_label r));
              let uctx = Obs.Trace.make ~sampled:false 0xFEED in
              match Kv.Client.request c ~trace:uctx (Protocol.Get 1) with
              | Protocol.Value "one" -> ()
              | r -> Alcotest.failf "get: %s" (Protocol.reply_label r));
          (* Spans are recorded before the reply is sent, so by the
             time the client returned they are resident. *)
          let spans = Obs.Trace.spans_of tr ~id:0xD00D in
          let has st = List.exists (fun s -> s.Obs.Trace.stage = st) spans in
          check_bool "root request span recorded" true (has Obs.Trace.Request);
          check_bool "queue-wait span recorded" true (has Obs.Trace.Queue_wait);
          check_bool "exec span recorded" true (has Obs.Trace.Exec);
          check_bool "map-op span recorded" true (has Obs.Trace.Map_op);
          check_bool "unsampled request records no spans" true
            (Obs.Trace.spans_of tr ~id:0xFEED = []);
          (* Ledger: every request's minted id lands in its slot. *)
          let plan =
            {
              Loadgen.default_plan with
              Loadgen.n = 200;
              conns = 2;
              rate = 20_000.0;
              deadline_ns = 2_000_000_000;
              trace_one_in = 8;
            }
          in
          let s = Loadgen.run ~port:(S.port srv) plan in
          (match Loadgen.verify s with
          | Ok () -> ()
          | Error e -> Alcotest.fail e);
          check_int "ledger has one trace id per request" plan.Loadgen.n
            (Array.length s.Loadgen.trace_ids);
          let ok = ref true in
          Array.iteri
            (fun i id ->
              if id <> Loadgen.trace_id_for plan i then ok := false)
            s.Loadgen.trace_ids;
          check_bool "ledger ids regenerate from the plan" true !ok))

(* Healthy server, fault-free plan: the ledger accounts every request
   and nothing is pending. *)
let test_loadgen_healthy_ledger () =
  with_server ~config:(small_config ~queue:256 ()) (fun srv _map ->
      let plan =
        {
          Loadgen.default_plan with
          Loadgen.n = 3000;
          conns = 4;
          rate = 30_000.0;
          deadline_ns = 2_000_000_000;
        }
      in
      let s = Loadgen.run ~port:(S.port srv) plan in
      (match Loadgen.verify s with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      check_int "everything accounted" plan.Loadgen.n (Loadgen.accounted s);
      check_int "no silent drops" 0 s.Loadgen.pending;
      check_int "no connection drops on a quiet plan" 0 s.Loadgen.dropped;
      check_bool "most requests succeeded" true
        (s.Loadgen.ok > (plan.Loadgen.n * 9 / 10)))

(* Same plan, same seed → same trace text and same offered schedule;
   the replay path the repro CLI uses. *)
let test_loadgen_deterministic_trace () =
  let p1 = { Loadgen.default_plan with Loadgen.seed = 5; n = 500 } in
  let p2 = { Loadgen.default_plan with Loadgen.seed = 5; n = 500 } in
  check_string "identical plans serialize identically"
    (Loadgen.to_string p1) (Loadgen.to_string p2);
  let t1 = Harness.Trace.generate ~seed:p1.Loadgen.seed p1.Loadgen.profile 500
  and t2 = Harness.Trace.generate ~seed:p2.Loadgen.seed p2.Loadgen.profile 500 in
  check_bool "identical op traces" true (t1 = t2)

(* Traffic-path chaos on: connections are severed and reads paused by
   the fault plan, yet the ledger still balances — drops are accounted
   as drops, not silence — and the server survives to serve again. *)
let test_loadgen_chaos_ledger () =
  with_server ~config:(small_config ~queue:256 ()) (fun srv _map ->
      let plan =
        {
          Loadgen.default_plan with
          Loadgen.n = 2000;
          conns = 4;
          rate = 20_000.0;
          deadline_ns = 2_000_000_000;
          net =
            {
              Chaos.Net.quiet with
              Chaos.Net.seed = 31;
              drop_one_in = 120;
              pause_reads_one_in = 60;
              pause_reads_s = 0.005;
            };
        }
      in
      let s = Loadgen.run ~port:(S.port srv) plan in
      (match Loadgen.verify s with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      check_bool "fault plan actually fired" true (s.Loadgen.fault_drops >= 1);
      check_bool "drops were accounted" true (s.Loadgen.dropped >= 1);
      check_bool "generator reconnected" true (s.Loadgen.reconnects >= 1);
      with_client srv (fun c ->
          check_bool "server survives the chaos run" true (Kv.Client.ping c)))

(* Drain under live traffic: post-drain requests get typed
   [Shutting_down] replies, queued work is flushed (drain returns
   true), and the ledger still balances. *)
let test_drain_under_traffic () =
  let map = M.create () in
  let srv = S.start ~config:(small_config ~queue:128 ()) map in
  let plan =
    {
      Loadgen.default_plan with
      Loadgen.n = 6000;
      conns = 4;
      rate = 30_000.0;
      deadline_ns = 2_000_000_000;
    }
  in
  let result = ref None in
  let gen =
    Thread.create
      (fun () -> result := Some (Loadgen.run ~port:(S.port srv) plan))
      ()
  in
  Unix.sleepf 0.05;
  check_bool "drain flushed everything" true (S.drain ~timeout:5.0 srv);
  Thread.join gen;
  match !result with
  | None -> Alcotest.fail "load generator never finished"
  | Some s -> (
      (match Loadgen.verify s with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      check_bool "some requests executed before the drain" true (s.Loadgen.ok >= 1);
      check_bool "drain produced typed shutdown replies or drops" true
        (s.Loadgen.shutting_down >= 1 || s.Loadgen.dropped >= 1))

(* Workers attach progress slots, heartbeat while idle (ticker wakes
   them), and detach on drain — so a watchdog over the same progress
   sees no stall from a clean shutdown. *)
let test_progress_clean_drain () =
  let progress = Ct_util.Progress.create ~slots:4 () in
  let wd = Harness.Watchdog.create ~stall_epochs:2 progress in
  let map = M.create () in
  let srv = S.start ~config:(small_config ~workers:2 ()) ~progress map in
  with_client srv (fun c ->
      for i = 1 to 20 do
        ignore (Kv.Client.put c i "v")
      done);
  (* Idle interval: ticker-driven heartbeats keep beats moving. *)
  let b0 = Array.fold_left ( + ) 0 (Ct_util.Progress.snapshot progress) in
  Unix.sleepf 0.1;
  let b1 = Array.fold_left ( + ) 0 (Ct_util.Progress.snapshot progress) in
  check_bool "idle workers still heartbeat" true (b1 > b0);
  check_bool "drain" true (S.drain srv);
  (* After a clean drain every slot is vacated: no false stalls. *)
  for _ = 1 to 5 do
    check_int "no stall after clean drain" 0
      (List.length (Harness.Watchdog.step wd))
  done

(* Regression: the drain flush deadline must come from the monotonic
   clock ([Clock.now_ns], virtualizable), not wall time.  A stepped
   fake clock makes a generous timeout elapse almost instantly in wall
   time; the old [Unix.gettimeofday] deadline would have sat out the
   full 60 s (and, under a backwards NTP step, past it). *)
let test_drain_monotonic_deadline () =
  let module Slow = struct
    include M

    (* Pin one worker inside a lookup so the drain flush wait has a
       live in-flight request to time out on. *)
    let lookup t k =
      Thread.delay 1.5;
      M.lookup t k
  end in
  let module S2 = Kv.Server.Make (Slow) in
  let map = Slow.create () in
  let srv = S2.start ~config:(small_config ~workers:1 ()) map in
  Fun.protect
    ~finally:(fun () -> Ct_util.Clock.set_source None)
    (fun () ->
      let got_reply = Atomic.make false in
      let requester =
        Thread.create
          (fun () ->
            let c = Kv.Client.connect ~port:(S2.port srv) () in
            Fun.protect
              ~finally:(fun () -> Kv.Client.close c)
              (fun () ->
                (* Closed queues still answer what they hold, so this
                   returns once the slow worker finishes. *)
                ignore (Kv.Client.request c (Kv.Protocol.Get 1));
                Atomic.set got_reply true))
          ()
      in
      (* Let the request reach the sleeping worker. *)
      Unix.sleepf 0.3;
      (* Fake monotonic time that advances 0.25 s per reading: a 60 s
         drain timeout elapses after ~240 polls of the flush loop. *)
      let fake = Atomic.make 1_000_000_000 in
      Ct_util.Clock.set_source
        (Some (fun () -> Atomic.fetch_and_add fake 250_000_000));
      let wall0 = Ct_util.Clock.monotonic_ns () in
      let flushed = S2.drain ~timeout:60.0 srv in
      let wall_s =
        float_of_int (Ct_util.Clock.monotonic_ns () - wall0) *. 1e-9
      in
      Thread.join requester;
      check_bool "flush window expired on the fake clock" false flushed;
      check_bool "deadline tracked the injected clock, not wall time" true
        (wall_s < 20.0);
      check_bool "queued request was still answered, not abandoned" true
        (Atomic.get got_reply))

let suite =
  [
    ("protocol_roundtrip", `Quick, test_protocol_roundtrip);
    ("protocol_trace_propagation", `Quick, test_protocol_trace_propagation);
    ("reader_framing", `Quick, test_reader_framing);
    ("reader_traced_framing", `Quick, test_reader_traced_framing);
    ("bqueue_basics", `Quick, test_bqueue_basics);
    ("e2e_basic", `Quick, test_e2e_basic);
    ("deadline_exceeded", `Quick, test_deadline_exceeded);
    ("queue_full_shed", `Quick, test_queue_full_shed);
    ("latency_breach_shed", `Quick, test_latency_breach_shed);
    ("slow_loris_dropped", `Quick, test_slow_loris_dropped);
    ("loadgen_trace_roundtrip", `Quick, test_loadgen_trace_roundtrip);
    ("loadgen_trace_minting", `Quick, test_loadgen_trace_minting);
    ("loadgen_deterministic_trace", `Quick, test_loadgen_deterministic_trace);
    ("e2e_trace_spans", `Slow, test_e2e_trace_spans);
    ("loadgen_healthy_ledger", `Slow, test_loadgen_healthy_ledger);
    ("loadgen_chaos_ledger", `Slow, test_loadgen_chaos_ledger);
    ("drain_under_traffic", `Slow, test_drain_under_traffic);
    ("drain_monotonic_deadline", `Slow, test_drain_monotonic_deadline);
    ("progress_clean_drain", `Quick, test_progress_clean_drain);
  ]
