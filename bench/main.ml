(* Benchmark driver regenerating every table and figure of the paper's
   evaluation (Section 5 + artifact appendix).

   Two layers:
   - Bechamel micro-benchmarks: one Test.make per structure for each
     single-threaded table/figure family (Figure 10 lookup/insert, the
     fast-path and collision micro-costs), OLS-fitted ns/op.
   - Harness sweeps (Harness.Suites): the full tables for Figures 9 and
     10, the multi-threaded Figures 11-13, the artifact histograms, the
     Section 4.1 theory check and the cache ablation.

   Usage:
     main.exe                 all experiments, quick scale
     main.exe full            all experiments, paper-like scale
     main.exe fig11 fig13     selected experiments (append "full")
   Experiments: fig9 fig10 fig11 fig12 fig13 hist theory ablation
                ablation-narrow mixed zipf remove trace bechamel
                micro-json sweeps obs cache serve persist all *)

open Bechamel
open Toolkit

module Hashing = Ct_util.Hashing
module Suites = Harness.Suites

module CT = Cachetrie.Make (Hashing.Int_key)
module Ctrie_map = Ctrie.Make (Hashing.Int_key)
module Chm_map = Chm.Split_ordered.Make (Hashing.Int_key)
module Skiplist_map = Skiplist.Make (Hashing.Int_key)

(* Boxed-slot twin of the cache-trie (generated from the same source,
   slot representation swapped) so both memory layouts are measured in
   the same run. *)
module CT_boxed = struct
  include Cachetrie_boxed.Make (Hashing.Int_key)

  let name = "cachetrie-boxed"
end

(* All generators honour CT_BENCH_SEED so a run is reproducible
   end-to-end; the seed is recorded in the emitted JSON. *)
let bench_seed =
  match Sys.getenv_opt "CT_BENCH_SEED" with
  | Some s -> int_of_string s
  | None -> 0xC0FFEE

(* ------------------------- bechamel layer -------------------------- *)

(* Per-structure single-threaded micro benches on a prefilled map of
   [n] keys; each run performs [batch] operations. *)
let bench_n = 100_000
let batch = 1_000

(* Each read test prefills a fresh structure, shuffles a probe set and
   warms the trie cache, as a [make_with_resource] allocate step: prep
   runs when the benchmark is executed, not when the test list is
   built.  Eager prep kept ~38 structures x 100k keys live at once and
   every test then measured against that heap's randomly-scheduled
   major-GC slices — enough to swing single-run estimates by 40%.  The
   [free] step drops the structure and compacts so the next test starts
   from a small heap.  (The prep stays inline per test: a shared helper
   cannot return [M.t] without the abstract type escaping its module's
   scope.) *)
let drop_and_compact _ = Gc.compact ()

let lookup_test (module M : Suites.IMAP) =
  let allocate () =
    let t = M.create () in
    let keys = Harness.Workload.shuffled_keys ~seed:bench_seed bench_n in
    Array.iter (fun k -> M.insert t k k) keys;
    let probes =
      Array.sub
        (Harness.Workload.lookup_order ~seed:(bench_seed lxor 0xFEED) keys)
        0 batch
    in
    Array.iter (fun k -> ignore (M.lookup t k)) keys;
    (t, probes)
  in
  Test.make_with_resource ~name:M.name Test.uniq ~allocate
    ~free:drop_and_compact
    (Staged.stage (fun (t, probes) ->
         for i = 0 to batch - 1 do
           ignore (Sys.opaque_identity (M.lookup t probes.(i)))
         done))

let find_test (module M : Suites.IMAP) =
  let allocate () =
    let t = M.create () in
    let keys = Harness.Workload.shuffled_keys ~seed:bench_seed bench_n in
    Array.iter (fun k -> M.insert t k k) keys;
    let probes =
      Array.sub
        (Harness.Workload.lookup_order ~seed:(bench_seed lxor 0xFEED) keys)
        0 batch
    in
    Array.iter (fun k -> ignore (M.lookup t k)) keys;
    (t, probes)
  in
  (* Every probe is present, so [find] never raises here; a hit must
     not allocate (this test backs the 0-words/op acceptance check). *)
  Test.make_with_resource ~name:M.name Test.uniq ~allocate
    ~free:drop_and_compact
    (Staged.stage (fun (t, probes) ->
         for i = 0 to batch - 1 do
           ignore (Sys.opaque_identity (M.find t probes.(i)))
         done))

let mem_test (module M : Suites.IMAP) =
  let allocate () =
    let t = M.create () in
    let keys = Harness.Workload.shuffled_keys ~seed:bench_seed bench_n in
    Array.iter (fun k -> M.insert t k k) keys;
    let probes =
      Array.sub
        (Harness.Workload.lookup_order ~seed:(bench_seed lxor 0xFEED) keys)
        0 batch
    in
    Array.iter (fun k -> ignore (M.lookup t k)) keys;
    (t, probes)
  in
  Test.make_with_resource ~name:M.name Test.uniq ~allocate
    ~free:drop_and_compact
    (Staged.stage (fun (t, probes) ->
         for i = 0 to batch - 1 do
           ignore (Sys.opaque_identity (M.mem t probes.(i)))
         done))

let insert_test (module M : Suites.IMAP) =
  let allocate () =
    let t = M.create () in
    let keys = Harness.Workload.shuffled_keys ~seed:bench_seed bench_n in
    (* Overwrite-style inserts on a warm structure keep the cost of one
       run stable across iterations (fresh-structure inserts are timed
       in the fig10 sweep instead). *)
    let probes =
      Array.sub
        (Harness.Workload.lookup_order ~seed:(bench_seed lxor 0xFEED) keys)
        0 batch
    in
    (t, probes)
  in
  Test.make_with_resource ~name:M.name Test.uniq ~allocate
    ~free:drop_and_compact
    (Staged.stage (fun (t, probes) ->
         for i = 0 to batch - 1 do
           M.insert t probes.(i) i
         done))

let snapshot_test () =
  let module CS = Ctrie_snap.Make (Hashing.Int_key) in
  let allocate () =
    let t = CS.create () in
    let keys = Harness.Workload.shuffled_keys ~seed:bench_seed bench_n in
    Array.iter (fun k -> CS.insert t k k) keys;
    t
  in
  (* O(1) snapshots: cost must not scale with the 100k keys below. *)
  Test.make_with_resource ~name:"ctrie-snapshot" Test.uniq ~allocate
    ~free:drop_and_compact
    (Staged.stage (fun t ->
         for _ = 1 to batch do
           ignore (Sys.opaque_identity (CS.snapshot t))
         done))

let collision_test () =
  let module C = Cachetrie.Make (Hashing.Constant_hash_int) in
  let t = C.create () in
  for i = 0 to 31 do
    C.insert t i i
  done;
  Test.make ~name:"cachetrie-lnode"
    (Staged.stage (fun () ->
         for i = 0 to batch - 1 do
           ignore (Sys.opaque_identity (C.lookup t (i land 31)))
         done))

let bechamel_groups () =
  [
    Test.make_grouped ~name:"fig10-lookup"
      (List.map lookup_test Suites.structures);
    Test.make_grouped ~name:"fig10-insert"
      (List.map insert_test Suites.structures);
    Test.make_grouped ~name:"micro" [ collision_test (); snapshot_test () ];
  ]

let run_bechamel () =
  Harness.Report.section "Bechamel micro-benchmarks (OLS ns per run)";
  Printf.printf "(one run = %d operations on a %d-key structure)\n\n" batch bench_n;
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  List.iter
    (fun group ->
      let raw = Benchmark.all cfg [ instance ] group in
      let results = Analyze.all ols instance raw in
      let rows = ref [] in
      Hashtbl.iter
        (fun name ols_result ->
          let ns_per_run =
            match Analyze.OLS.estimates ols_result with
            | Some (x :: _) -> x
            | _ -> nan
          in
          rows := [ name; Printf.sprintf "%.1f" (ns_per_run /. float_of_int batch) ] :: !rows)
        results;
      Harness.Report.print_table
        ~header:[ "benchmark"; "ns/op" ]
        (List.sort compare !rows);
      print_newline ())
    (bechamel_groups ())

(* ----------------------- persisted JSON layer ---------------------- *)

module Json = Harness.Report.Json

(* Bechamel's stock [Instance.minor_allocated] reads
   [Gc.quick_stat ()], which OCaml 5 refreshes only at GC boundaries —
   small per-run allocation slopes OLS-fit to 0.  This measure reads
   [Gc.minor_words ()], which samples the live allocation pointer and
   is exact. *)
module Minor_words_exact = struct
  type witness = unit

  let load () = ()
  let unload () = ()
  let make () = ()
  let get () = Gc.minor_words ()
  let label () = "minor-words-exact"
  let unit () = "mnw"
end

let minor_words_instance =
  Measure.instance
    (module Minor_words_exact)
    (Measure.register (module Minor_words_exact))

(* Structures measured by the read-path micro benches: every registered
   map plus the boxed-slot cache-trie twin for the layout A/B. *)
let read_modules : (module Suites.IMAP) list =
  Suites.structures @ [ (module CT_boxed) ]

let json_meta ~scale extra =
  Json.Obj
    ([
       ("paper", Json.String "cache-tries (PPoPP 2018)");
       ("seed", Json.Int bench_seed);
       ( "scale",
         Json.String
           (match scale with Suites.Quick -> "quick" | Suites.Full -> "full") );
       ("slots_repr", Json.String Ct_util.Slots.repr);
       ( "domains_available",
         Json.Int (Harness.Parallel.available_domains ()) );
     ]
    @ extra)

(* Micro benches with two bechamel instances: OLS ns/run against the
   monotonic clock and minor words/run against the allocation counter.
   The acceptance bar lives here: cachetrie find/mem must report 0
   minor words per op, and flat-slot lookup must not be slower than the
   boxed twin measured in the same run. *)
let run_micro_json scale =
  Harness.Report.section "Persisted micro benches (BENCH_micro.json)";
  Printf.printf
    "(one run = %d operations on a %d-key structure; seed %#x; best of 3)\n\n"
    batch bench_n bench_seed;
  let groups =
    [
      ("find", List.map find_test read_modules);
      ("mem", List.map mem_test read_modules);
      ("lookup", List.map lookup_test read_modules);
      ("insert", List.map insert_test read_modules);
      ("micro", [ collision_test (); snapshot_test () ]);
    ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let instances = [ Instance.monotonic_clock; minor_words_instance ] in
  let estimate results name =
    match Hashtbl.find_opt results name with
    | Some r -> (
        match Analyze.OLS.estimates r with Some (x :: _) -> x | _ -> nan)
    | None -> nan
  in
  (* The measurement envelope itself allocates (each [Gc.minor_words]
     sample boxes a float inside the window); calibrate it on an empty
     staged function and subtract. *)
  let alloc_baseline =
    let raw =
      Benchmark.all cfg instances
        (Test.make ~name:"baseline" (Staged.stage (fun () -> ())))
    in
    let allocs = Analyze.all ols minor_words_instance raw in
    Hashtbl.fold (fun _ r acc ->
        match Analyze.OLS.estimates r with Some (x :: _) -> x | _ -> acc)
      allocs 0.0
  in
  Printf.printf "(allocation baseline: %.1f words per measured run)\n\n"
    alloc_baseline;
  (* Single-run OLS estimates swing by tens of percent on a shared
     single-core host (major-GC slices and scheduler preemption land on
     whichever loop is being timed).  Like the sweeps, measure each
     group [reps] times and keep the minimum per test: interference only
     ever inflates a run, so the min is the cleanest observation. *)
  let reps = 3 in
  let json_groups =
    List.map
      (fun (gname, tests) ->
        let passes =
          List.init reps (fun _ ->
              let raw =
                Benchmark.all cfg instances
                  (Test.make_grouped ~name:gname tests)
              in
              ( Analyze.all ols Instance.monotonic_clock raw,
                Analyze.all ols minor_words_instance raw ))
        in
        let names =
          match passes with
          | (times, _) :: _ ->
              Hashtbl.fold (fun name _ acc -> name :: acc) times []
              |> List.sort compare
          | [] -> []
        in
        let best f =
          List.fold_left (fun acc pass -> Float.min acc (f pass)) infinity
            passes
        in
        let rows =
          List.map
            (fun name ->
              let per_op est = est /. float_of_int batch in
              let ns = per_op (best (fun (times, _) -> estimate times name)) in
              let words =
                per_op
                  (Float.max 0.0
                     (best (fun (_, allocs) -> estimate allocs name)
                     -. alloc_baseline))
              in
              (* The window itself boxes ~4 words per *sample* (two
                 [Gc.minor_words] floats); that per-sample constant
                 should land in the OLS intercept, but fit noise leaks
                 a fraction of it into the slope.  Slopes below one
                 envelope per run are indistinguishable from zero. *)
              let words = if words < 0.005 then 0.0 else words in
              (* Strip the "group/" prefix bechamel adds. *)
              let short =
                match String.index_opt name '/' with
                | Some i -> String.sub name (i + 1) (String.length name - i - 1)
                | None -> name
              in
              (short, ns, words))
            names
        in
        Harness.Report.print_table
          ~header:[ Printf.sprintf "%s: structure" gname; "ns/op"; "minor words/op" ]
          (List.map
             (fun (name, ns, words) ->
               [ name; Harness.Report.fmt_ns ns; Printf.sprintf "%.3f" words ])
             rows);
        print_newline ();
        ( gname,
          Json.List
            (List.map
               (fun (name, ns, words) ->
                 Json.Obj
                   [
                     ("structure", Json.String name);
                     ("ns_per_op", Json.Float ns);
                     ("minor_words_per_op", Json.Float words);
                   ])
               rows) ))
      groups
  in
  Json.write_file "BENCH_micro.json"
    (Json.Obj
       [
         ( "meta",
           json_meta ~scale
             [ ("batch", Json.Int batch); ("size", Json.Int bench_n) ] );
         ("groups", Json.Obj json_groups);
       ])

(* Throughput sweeps (structure x domain count) via the padded
   per-domain counters, plus single-domain Gc.minor_words deltas. *)
let run_sweeps scale =
  Harness.Report.section "Persisted sweeps (BENCH_sweeps.json)";
  let n = match scale with Suites.Quick -> 50_000 | Suites.Full -> 500_000 in
  let threads = Suites.thread_counts scale in
  let reps = 3 in
  let keys = Harness.Workload.shuffled_keys ~seed:bench_seed n in
  let sweep_rows = ref [] in
  let record experiment name p elapsed ops =
    sweep_rows :=
      Json.Obj
        [
          ("experiment", Json.String experiment);
          ("structure", Json.String name);
          ("domains", Json.Int p);
          ("size", Json.Int n);
          ("elapsed_s", Json.Float elapsed);
          ("ops_per_sec", Json.Float (float_of_int ops /. elapsed));
        ]
      :: !sweep_rows
  in
  List.iter
    (fun (module M : Suites.IMAP) ->
      List.iter
        (fun p ->
          let ranges = Harness.Workload.disjoint_ranges ~domains:p ~total:n in
          (* Insert, low contention: each domain owns a key range. *)
          let best_insert = ref (infinity, 0) in
          for _ = 1 to reps do
            let t = M.create () in
            let elapsed, ops =
              Harness.Parallel.run_counted ~domains:p (fun d counters ->
                  let r = ranges.(d) in
                  Array.iter (fun k -> M.insert t k k) r;
                  Ct_util.Stripe.add counters d (Array.length r))
            in
            if elapsed < fst !best_insert then best_insert := (elapsed, ops)
          done;
          record "insert" M.name p (fst !best_insert) (snd !best_insert);
          (* Lookup over a prefilled, cache-warmed structure. *)
          let t = M.create () in
          Array.iter (fun k -> M.insert t k k) keys;
          Array.iter (fun k -> ignore (M.lookup t k)) keys;
          let best_lookup = ref (infinity, 0) in
          for _ = 1 to reps do
            let elapsed, ops =
              Harness.Parallel.run_counted ~domains:p (fun d counters ->
                  let r = ranges.(d) in
                  Array.iter (fun k -> ignore (Sys.opaque_identity (M.find t k))) r;
                  Ct_util.Stripe.add counters d (Array.length r))
            in
            if elapsed < fst !best_lookup then best_lookup := (elapsed, ops)
          done;
          record "lookup" M.name p (fst !best_lookup) (snd !best_lookup))
        threads)
    read_modules;
  (* Batch-vs-scalar lookup curves: the staged [find_batch] path at
     several chunk sizes over the same prefilled structures and probe
     ranges as the scalar sweep above (which is the K=1-equivalent
     baseline).  Chunks are pre-sliced and the out buffers reused, so
     the timed region runs nothing but find_batch; Batch_fallback
     structures chart the scalar loop at every K. *)
  let batch_ks = [ 1; 8; 16; 32; 64 ] in
  List.iter
    (fun (module M : Suites.IMAP) ->
      let t = M.create () in
      Array.iter (fun k -> M.insert t k k) keys;
      Array.iter (fun k -> ignore (M.lookup t k)) keys;
      List.iter
        (fun p ->
          let ranges = Harness.Workload.disjoint_ranges ~domains:p ~total:n in
          List.iter
            (fun kk ->
              let chunked =
                Array.map (fun r -> Harness.Workload.batches ~batch:kk r) ranges
              in
              let outs = Array.init p (fun _ -> Array.make kk 0) in
              let best = ref (infinity, 0) in
              for _ = 1 to reps do
                let elapsed, ops =
                  Harness.Parallel.run_counted ~domains:p (fun d counters ->
                      let out = outs.(d) in
                      let hits = ref 0 in
                      Array.iter
                        (fun chunk ->
                          hits := !hits + M.find_batch t chunk ~miss:(-1) out)
                        chunked.(d);
                      ignore (Sys.opaque_identity !hits);
                      Ct_util.Stripe.add counters d (Array.length ranges.(d)))
                in
                if elapsed < fst !best then best := (elapsed, ops)
              done;
              record
                (Printf.sprintf "find_batch_k%d" kk)
                M.name p (fst !best) (snd !best))
            batch_ks)
        threads)
    read_modules;
  (* Word-count aggregation: each domain folds its slice of a Zipf word
     stream into shared per-word counters (find, then CAS-bump via
     replace_if / put_if_absent).  The batched variant warms each
     16-word chunk with [find_batch] before bumping, so the chunk's
     read misses overlap and the CAS pass runs against warm lines. *)
  let wc_universe = max 16 (n / 10) in
  let wc_stream =
    Harness.Workload.zipf_keys ~seed:bench_seed ~n ~universe:wc_universe 1.1
  in
  let wc_k = 16 in
  List.iter
    (fun (module M : Suites.IMAP) ->
      let bump t k =
        let rec go () =
          match M.find t k with
          | v -> if not (M.replace_if t k ~expected:v (v + 1)) then go ()
          | exception Not_found -> if M.put_if_absent t k 1 <> None then go ()
        in
        go ()
      in
      List.iter
        (fun p ->
          let slices =
            Array.init p (fun d ->
                let lo = d * n / p in
                Array.sub wc_stream lo (((d + 1) * n / p) - lo))
          in
          let chunked =
            Array.map (fun s -> Harness.Workload.batches ~batch:wc_k s) slices
          in
          let outs = Array.init p (fun _ -> Array.make wc_k 0) in
          let best_scalar = ref (infinity, 0) and best_batch = ref (infinity, 0) in
          for _ = 1 to reps do
            let t = M.create () in
            let elapsed, ops =
              Harness.Parallel.run_counted ~domains:p (fun d counters ->
                  let s = slices.(d) in
                  Array.iter (fun k -> bump t k) s;
                  Ct_util.Stripe.add counters d (Array.length s))
            in
            if elapsed < fst !best_scalar then best_scalar := (elapsed, ops);
            let t = M.create () in
            let elapsed, ops =
              Harness.Parallel.run_counted ~domains:p (fun d counters ->
                  let out = outs.(d) in
                  Array.iter
                    (fun chunk ->
                      ignore (M.find_batch t chunk ~miss:0 out);
                      Array.iter (fun k -> bump t k) chunk)
                    chunked.(d);
                  Ct_util.Stripe.add counters d (Array.length slices.(d)))
            in
            if elapsed < fst !best_batch then best_batch := (elapsed, ops)
          done;
          record "wordcount" M.name p (fst !best_scalar) (snd !best_scalar);
          record
            (Printf.sprintf "wordcount_batch_k%d" wc_k)
            M.name p (fst !best_batch) (snd !best_batch))
        threads)
    read_modules;
  (* Allocation deltas, measured on this domain alone so the
     [Gc.minor_words] counter is exact. *)
  let alloc_rows =
    List.map
      (fun (module M : Suites.IMAP) ->
        let t = M.create () in
        Array.iter (fun k -> M.insert t k k) keys;
        Array.iter (fun k -> ignore (M.lookup t k)) keys;
        let delta f =
          let w0 = Gc.minor_words () in
          f ();
          (Gc.minor_words () -. w0) /. float_of_int n
        in
        let find_w =
          delta (fun () ->
              Array.iter
                (fun k -> ignore (Sys.opaque_identity (M.find t k)))
                keys)
        in
        let mem_w =
          delta (fun () ->
              Array.iter (fun k -> ignore (Sys.opaque_identity (M.mem t k))) keys)
        in
        let lookup_w =
          delta (fun () ->
              Array.iter
                (fun k -> ignore (Sys.opaque_identity (M.lookup t k)))
                keys)
        in
        (* Batch read budget: chunks pre-sliced and the out buffer
           reused outside the metered region, so this is the staged
           traversal's own allocation — the acceptance bar is 0. *)
        let find_batch_w =
          let chunks = Harness.Workload.batches ~batch:64 keys in
          let out = Array.make 64 0 in
          (* One warm pass materializes this domain's scratch in the
             pool, so the delta sees the steady-state (0-alloc) path. *)
          Array.iter (fun c -> ignore (M.find_batch t c ~miss:(-1) out)) chunks;
          delta (fun () ->
              Array.iter
                (fun c ->
                  ignore (Sys.opaque_identity (M.find_batch t c ~miss:(-1) out)))
                chunks)
        in
        let insert_w =
          let fresh = M.create () in
          delta (fun () -> Array.iter (fun k -> M.insert fresh k k) keys)
        in
        Json.Obj
          [
            ("structure", Json.String M.name);
            ("find_minor_words_per_op", Json.Float find_w);
            ("mem_minor_words_per_op", Json.Float mem_w);
            ("lookup_minor_words_per_op", Json.Float lookup_w);
            ("find_batch_minor_words_per_op", Json.Float find_batch_w);
            ("insert_minor_words_per_op", Json.Float insert_w);
          ])
      read_modules
  in
  Harness.Report.print_table
    ~header:
      [
        "structure"; "find w/op"; "mem w/op"; "lookup w/op"; "batch w/op";
        "insert w/op";
      ]
    (List.map
       (fun row ->
         match row with
         | Json.Obj
             [
               (_, Json.String name);
               (_, Json.Float f);
               (_, Json.Float m);
               (_, Json.Float l);
               (_, Json.Float b);
               (_, Json.Float i);
             ] ->
             [
               name;
               Printf.sprintf "%.3f" f;
               Printf.sprintf "%.3f" m;
               Printf.sprintf "%.3f" l;
               Printf.sprintf "%.3f" b;
               Printf.sprintf "%.3f" i;
             ]
         | _ -> [ "?" ])
       alloc_rows);
  print_newline ();
  Json.write_file "BENCH_sweeps.json"
    (Json.Obj
       [
         ( "meta",
           json_meta ~scale
             [
               ("size", Json.Int n);
               ("domain_counts", Json.List (List.map (fun p -> Json.Int p) threads));
             ] );
         ("sweeps", Json.List (List.rev !sweep_rows));
         ("alloc_per_op", Json.List alloc_rows);
       ])

(* Observability overhead (BENCH_obs.json): the always-on metrics
   budget from DESIGN.md §11 — [find] with counters enabled must stay
   within 5% of counters disabled and allocate nothing.  Same binary,
   flipping [Metrics.set_enabled]; configs are interleaved per rep so
   clock drift and GC phase hit both sides alike, and the min over reps
   is kept (interference only ever inflates a loop). *)
let run_obs scale =
  Harness.Report.section "Observability overhead (BENCH_obs.json)";
  let n = match scale with Suites.Quick -> bench_n | Suites.Full -> 200_000 in
  let reps = 15 in
  let keys = Harness.Workload.shuffled_keys ~seed:bench_seed n in
  let fn = float_of_int n in
  let rows =
    List.map
      (fun (module M : Suites.IMAP) ->
        let t = M.create () in
        Array.iter (fun k -> M.insert t k k) keys;
        Array.iter (fun k -> ignore (M.lookup t k)) keys;
        let time_finds () =
          let t0 = Ct_util.Clock.monotonic_ns () in
          Array.iter (fun k -> ignore (Sys.opaque_identity (M.find t k))) keys;
          float_of_int (Ct_util.Clock.monotonic_ns () - t0) /. fn
        in
        let best_off = ref infinity and best_on = ref infinity in
        (* One untimed pass per mode so neither side pays first-touch
           and branch-training costs; then interleave off/on so slow
           drift (frequency scaling, GC pacing) hits both equally and
           min-over-reps converges on the true floor of each. *)
        Ct_util.Metrics.set_enabled false;
        ignore (time_finds ());
        Ct_util.Metrics.set_enabled true;
        ignore (time_finds ());
        for _ = 1 to reps do
          Ct_util.Metrics.set_enabled false;
          best_off := Float.min !best_off (time_finds ());
          Ct_util.Metrics.set_enabled true;
          best_on := Float.min !best_on (time_finds ())
        done;
        let words =
          (* counters enabled: this backs the 0-words/op budget *)
          let w0 = Gc.minor_words () in
          Array.iter (fun k -> ignore (Sys.opaque_identity (M.find t k))) keys;
          (Gc.minor_words () -. w0) /. fn
        in
        let overhead_pct = (!best_on -. !best_off) /. !best_off *. 100.0 in
        (M.name, !best_off, !best_on, overhead_pct, words))
      Suites.structures
  in
  Ct_util.Metrics.set_enabled true;
  (* Trace-path overhead (DESIGN.md §16): the per-map-op cost of the
     server's tracing guard.  The serving path always compiles the
     guard in, so the deployment question is what the *context value*
     costs: an unsampled request's context fails the sampled bit test
     exactly like the untraced context does — the ≤1% budget says that
     difference is nil — while a sampled request pays two clock reads
     and a ring write per op, amortized over 1-in-64 head sampling (the
     ≤5% budget).  All three modes run the identical loop body with
     only the context changing, so code shape and inlining cannot
     masquerade as overhead; the plain-find column is the no-wrapper
     reference.  Modes are interleaved per rep and the paired per-rep
     differences medianed (drift cancels within a rep, jitter across
     reps). *)
  let tr = Obs.Trace.create () in
  Obs.Trace.install tr;
  let trace_rows =
    List.map
      (fun (module M : Suites.IMAP) ->
        let t = M.create () in
        Array.iter (fun k -> M.insert t k k) keys;
        Array.iter (fun k -> ignore (M.lookup t k)) keys;
        let run_base lo hi =
          for idx = lo to hi - 1 do
            ignore (Sys.opaque_identity (M.find t keys.(idx)))
          done
        in
        (* Opaque contexts so the sampled-bit branch survives into the
           measured loop instead of constant-folding away. *)
        let nctx = Sys.opaque_identity Obs.Trace.none in
        let uctx = Sys.opaque_identity (Obs.Trace.make ~sampled:false 0xBEEF) in
        let sctx = Sys.opaque_identity (Obs.Trace.make ~sampled:true 0xBEEF) in
        let run_ctx ctx lo hi =
          for idx = lo to hi - 1 do
            let k = keys.(idx) in
            if Obs.Trace.sampled ctx then begin
              let s0 = Ct_util.Clock.monotonic_ns () in
              let r = M.find t k in
              Obs.Trace.record_sink ctx Obs.Trace.Map_op ~start_ns:s0
                ~dur_ns:(Ct_util.Clock.monotonic_ns () - s0)
                ~a:0 ~b:0;
              ignore (Sys.opaque_identity r)
            end
            else ignore (Sys.opaque_identity (M.find t k))
          done
        in
        (* Burst noise (VM steal time, majors) only ever inflates a
           timing, so each mode's floor is a min over reps — but the
           bursts here outlast a whole pass over [keys], so the floors
           are taken per short chunk (where quiet windows exist) and
           summed.  Chunks share keys across modes, so locality bias
           cancels in the percentages; mode order rotates per chunk so
           cache state left by one mode (the sampled loop heats the
           ring) cannot systematically tax a fixed successor. *)
        let timers = [| run_base; run_ctx nctx; run_ctx uctx; run_ctx sctx |] in
        let n_chunks = 8 in
        let chunk = (n + n_chunks - 1) / n_chunks in
        let treps = 2 * reps + 1 in
        let samples =
          Array.init 4 (fun _ -> Array.make_matrix n_chunks treps 0.0)
        in
        Array.iter (fun f -> f 0 n) timers;
        for i = 0 to treps - 1 do
          for c = 0 to n_chunks - 1 do
            let lo = c * chunk and hi = min n ((c + 1) * chunk) in
            for j = 0 to 3 do
              let m = (i + c + j) mod 4 in
              let t0 = Ct_util.Clock.monotonic_ns () in
              timers.(m) lo hi;
              samples.(m).(c).(i) <-
                float_of_int (Ct_util.Clock.monotonic_ns () - t0)
            done
          done
        done;
        (* Per chunk, the mean of the lowest quartile of reps: burst-
           resistant like a floor but with far lower variance than a
           single min sighting. *)
        let quartile_mean a =
          let s = Array.copy a in
          Array.sort compare s;
          let q = max 1 (Array.length s / 4) in
          let sum = ref 0.0 in
          for i = 0 to q - 1 do
            sum := !sum +. s.(i)
          done;
          !sum /. float_of_int q
        in
        let mode m =
          Array.fold_left (fun acc c -> acc +. quartile_mean c) 0.0 samples.(m)
          /. fn
        in
        let plain = mode 0
        and base = mode 1
        and guard = mode 2
        and samp = mode 3 in
        let unsampled_pct = (guard -. base) /. base *. 100.0 in
        let sampled_amortized_pct = (samp -. base) /. base /. 64.0 *. 100.0 in
        (M.name, plain, base, guard, samp, unsampled_pct, sampled_amortized_pct))
      Suites.structures
  in
  Obs.Trace.uninstall ();
  Harness.Report.print_table
    ~header:
      [ "structure"; "find ns/op (off)"; "find ns/op (on)"; "overhead"; "minor words/op (on)" ]
    (List.map
       (fun (name, off, on, pct, words) ->
         [
           name;
           Harness.Report.fmt_ns off;
           Harness.Report.fmt_ns on;
           Printf.sprintf "%+.1f%%" pct;
           Printf.sprintf "%.3f" words;
         ])
       rows);
  print_newline ();
  Harness.Report.print_table
    ~header:
      [
        "structure";
        "plain find";
        "untraced ctx";
        "unsampled ctx";
        "sampled (every op)";
        "amortized 1-in-64";
      ]
    (List.map
       (fun (name, plain, base, guard, samp, upct, spct) ->
         [
           name;
           Harness.Report.fmt_ns plain;
           Harness.Report.fmt_ns base;
           Printf.sprintf "%s (%+.2f%%)" (Harness.Report.fmt_ns guard) upct;
           Harness.Report.fmt_ns samp;
           Printf.sprintf "%+.2f%%" spct;
         ])
       trace_rows);
  print_newline ();
  Json.write_file "BENCH_obs.json"
    (Json.Obj
       [
         ( "meta",
           json_meta ~scale
             [
               ("size", Json.Int n);
               ("reps", Json.Int reps);
               (* the sampled budget is amortized: a sampled op's full
                  recording cost divided by the head-sampling rate *)
               ("trace_sampling_one_in", Json.Int 64);
             ] );
         ( "find_overhead",
           Json.List
             (List.map
                (fun (name, off, on, pct, words) ->
                  Json.Obj
                    [
                      ("structure", Json.String name);
                      ("ns_per_op_metrics_off", Json.Float off);
                      ("ns_per_op_metrics_on", Json.Float on);
                      ("overhead_pct", Json.Float pct);
                      ("minor_words_per_op_metrics_on", Json.Float words);
                    ])
                rows) );
         ( "trace_overhead",
           Json.List
             (List.map
                (fun (name, plain, base, guard, samp, upct, spct) ->
                  Json.Obj
                    [
                      ("structure", Json.String name);
                      ("ns_per_op_plain_find", Json.Float plain);
                      ("ns_per_op_untraced", Json.Float base);
                      ("ns_per_op_unsampled_guard", Json.Float guard);
                      ("ns_per_op_sampled", Json.Float samp);
                      ("unsampled_overhead_pct", Json.Float upct);
                      ("sampled_amortized_overhead_pct", Json.Float spct);
                    ])
                trace_rows) );
       ])

(* Serving-tier overload curves (BENCH_server.json): the sustained-
   throughput and shed-rate curves for DESIGN.md §12.  One quiet
   open-loop run past saturation measures the box's capacity (the
   goodput ceiling); the sweep then re-offers multiples of that
   capacity against a fresh server per point and records what the
   overload layer did with the excess — goodput held, typed sheds,
   deadline misses, accepted p99.  Faults stay off here: the curves
   isolate the admission/backpressure policy, while the chaos-on soak
   lives in `repro serve`. *)
let run_serve scale =
  Harness.Report.section "Serving overload curves (BENCH_server.json)";
  let module S = Kv.Server.Make (CT) in
  let duration = match scale with Suites.Quick -> 1.5 | Suites.Full -> 5.0 in
  let point_cap = match scale with Suites.Quick -> 120_000 | Suites.Full -> 600_000 in
  let workers = max 2 (min 4 (Harness.Parallel.available_domains () - 2)) in
  let config =
    {
      (Kv.Server.default_config ()) with
      Kv.Server.workers;
      queue_capacity = 64;
      enqueue_budget = 4;
      p99_bound_ns = 150_000_000;
      p99_window = 32;
      tick_interval = 0.01;
    }
  in
  let deadline_ns = 80_000_000 in
  (* Run one open-loop plan against a fresh map + server; return the
     client summary and the server-side facts the curve needs. *)
  let run_point ~seed ~rate =
    let n = max 1_000 (min point_cap (int_of_float (rate *. duration))) in
    let plan =
      {
        Kv.Loadgen.default_plan with
        Kv.Loadgen.seed;
        n;
        rate;
        deadline_ns;
        net = Chaos.Net.quiet;
      }
    in
    let map = CT.create () in
    let srv = S.start ~config map in
    let s = Kv.Loadgen.run ~port:(S.port srv) plan in
    let verified = Result.is_ok (Kv.Loadgen.verify s) in
    let accepted_p99 = Obs.Latency.percentile (S.latency srv) 99.0 in
    let executed = S.stat srv "executed" in
    ignore (S.drain ~timeout:10.0 srv);
    (s, verified, accepted_p99, executed)
  in
  let cal_rate = match scale with Suites.Quick -> 60_000.0 | Suites.Full -> 120_000.0 in
  let cal, cal_ok, _, _ = run_point ~seed:bench_seed ~rate:cal_rate in
  (* Floor the measured ceiling so a wedged calibration run cannot
     collapse the sweep into a no-load regime. *)
  let capacity = Float.max 2_000.0 cal.Kv.Loadgen.ok_rate in
  Printf.printf
    "capacity calibration: offered %.0f req/s -> goodput %.0f req/s (ledger %s)\n\n"
    cal_rate capacity
    (if cal_ok then "verified" else "UNVERIFIED");
  let multiples = [ 0.5; 1.0; 1.5; 2.0; 3.0 ] in
  let points =
    List.mapi
      (fun i m ->
        let rate = capacity *. m in
        let s, verified, accepted_p99, executed =
          run_point ~seed:(bench_seed lxor (0x5E12 + i)) ~rate
        in
        (m, rate, s, verified, accepted_p99, executed))
      multiples
  in
  Harness.Report.print_table
    ~header:
      [
        "offered/capacity";
        "offered req/s";
        "goodput req/s";
        "shed %";
        "deadline %";
        "accepted p99";
        "client p99";
        "ledger";
      ]
    (List.map
       (fun (m, rate, s, verified, accepted_p99, _) ->
         let n = float_of_int s.Kv.Loadgen.plan.Kv.Loadgen.n in
         [
           Printf.sprintf "%.1fx" m;
           Printf.sprintf "%.0f" rate;
           Printf.sprintf "%.0f" s.Kv.Loadgen.ok_rate;
           Printf.sprintf "%.1f%%" (100.0 *. float_of_int (Kv.Loadgen.shed s) /. n);
           Printf.sprintf "%.1f%%"
             (100.0 *. float_of_int s.Kv.Loadgen.deadline_exceeded /. n);
           Harness.Report.fmt_ns accepted_p99;
           Harness.Report.fmt_ns s.Kv.Loadgen.client_p99_ns;
           (if verified then "ok" else "FAIL");
         ])
       points);
  print_newline ();
  let point_json (m, rate, s, verified, accepted_p99, executed) =
    Json.Obj
      [
        ("offered_over_capacity", Json.Float m);
        ("offered_rate", Json.Float rate);
        ("requests", Json.Int s.Kv.Loadgen.plan.Kv.Loadgen.n);
        ("achieved_rate", Json.Float s.Kv.Loadgen.achieved_rate);
        ("goodput", Json.Float s.Kv.Loadgen.ok_rate);
        ("ok", Json.Int s.Kv.Loadgen.ok);
        ("shed_queue_full", Json.Int s.Kv.Loadgen.shed_queue_full);
        ("shed_latency_breach", Json.Int s.Kv.Loadgen.shed_latency_breach);
        ("deadline_exceeded", Json.Int s.Kv.Loadgen.deadline_exceeded);
        ("shutting_down", Json.Int s.Kv.Loadgen.shutting_down);
        ("dropped", Json.Int s.Kv.Loadgen.dropped);
        ("executed", Json.Int executed);
        ("accepted_p99_ns", Json.Float accepted_p99);
        ("client_p50_ns", Json.Float s.Kv.Loadgen.client_p50_ns);
        ("client_p99_ns", Json.Float s.Kv.Loadgen.client_p99_ns);
        ("ledger_verified", Json.Bool verified);
      ]
  in
  Json.write_file "BENCH_server.json"
    (Json.Obj
       [
         ( "meta",
           json_meta ~scale
             [
               ("workers", Json.Int workers);
               ("duration_s", Json.Float duration);
               ("deadline_ns", Json.Int deadline_ns);
               ("queue_capacity", Json.Int config.Kv.Server.queue_capacity);
               ("p99_bound_ns", Json.Int config.Kv.Server.p99_bound_ns);
               ("calibration_offered_rate", Json.Float cal_rate);
               ("capacity_req_per_s", Json.Float capacity);
             ] );
         ("points", Json.List (List.map point_json points));
       ])

(* Durable-serving cost curves (BENCH_persist.json): what the WAL's
   group-commit interval buys and costs.  A short interval bounds the
   durable-ack wait (client p99) but fsyncs small batches; a long one
   amortizes the fsync over more appends but every write waits longer
   for its covering flush.  One calibration run (durable mode, default
   interval) measures the goodput ceiling; the sweep then re-offers
   0.5x/1x/2x that capacity per interval against a fresh store + server
   and records goodput, client and accepted p99, and the achieved group
   size (appends per fsync).  Disk faults stay off: `repro recover`
   owns the crash path, this chart owns the happy-path durability
   tax. *)
let run_persist scale =
  Harness.Report.section
    "Durable serving: group-commit interval sweep (BENCH_persist.json)";
  let module S = Kv.Server.Make (Kv.Durable.Map) in
  let duration = match scale with Suites.Quick -> 1.0 | Suites.Full -> 4.0 in
  let point_cap =
    match scale with Suites.Quick -> 60_000 | Suites.Full -> 400_000
  in
  let intervals =
    match scale with
    | Suites.Quick -> [ 0.001; 0.002; 0.008 ]
    | Suites.Full -> [ 0.0005; 0.001; 0.002; 0.004; 0.008 ]
  in
  let multiples = [ 0.5; 1.0; 2.0 ] in
  let workers = max 2 (min 4 (Harness.Parallel.available_domains () - 2)) in
  let config =
    {
      (Kv.Server.default_config ()) with
      Kv.Server.workers;
      queue_capacity = 64;
      enqueue_budget = 4;
      p99_bound_ns = 150_000_000;
      p99_window = 32;
      tick_interval = 0.01;
    }
  in
  let deadline_ns = 80_000_000 in
  let dir = "_persist_bench" in
  let rec rm_rf path =
    match Unix.lstat path with
    | { Unix.st_kind = Unix.S_DIR; _ } ->
        Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
        Unix.rmdir path
    | _ -> Unix.unlink path
    | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  in
  let run_point ~seed ~commit_interval ~rate =
    rm_rf dir;
    let dcfg =
      {
        Kv.Durable.wal =
          { Persist.Wal.default_config with Persist.Wal.commit_interval };
        checkpoint_every = 4096;
        checkpoint_interval = 0.01;
      }
    in
    match Kv.Durable.open_ ~config:dcfg ~dir () with
    | Error e -> failwith (Persist.Recovery.error_to_string e)
    | Ok (st, _) ->
        let srv =
          S.start ~config ~durable:(Kv.Durable.hooks st) (Kv.Durable.map st)
        in
        let n = max 1_000 (min point_cap (int_of_float (rate *. duration))) in
        let plan =
          {
            Kv.Loadgen.default_plan with
            Kv.Loadgen.seed;
            n;
            rate;
            profile = Harness.Trace.churn;
            deadline_ns;
            net = Chaos.Net.quiet;
          }
        in
        let s = Kv.Loadgen.run ~port:(S.port srv) plan in
        let verified = Result.is_ok (Kv.Loadgen.verify s) in
        let accepted_p99 = Obs.Latency.percentile (S.latency srv) 99.0 in
        let m = Kv.Durable.metrics st in
        let appends = Ct_util.Metrics.get m Ct_util.Metrics.Wal_appends in
        let fsyncs = Ct_util.Metrics.get m Ct_util.Metrics.Wal_fsyncs in
        ignore (S.drain ~timeout:10.0 srv);
        ignore (Kv.Durable.close st);
        rm_rf dir;
        (s, verified, accepted_p99, appends, fsyncs)
  in
  let cal, cal_ok, _, _, _ =
    run_point ~seed:bench_seed ~commit_interval:0.002 ~rate:40_000.0
  in
  let capacity = Float.max 2_000.0 cal.Kv.Loadgen.ok_rate in
  Printf.printf
    "capacity calibration (durable, 2ms commit): goodput %.0f req/s (ledger \
     %s)\n\n"
    capacity
    (if cal_ok then "verified" else "UNVERIFIED");
  let points =
    List.concat_map
      (fun commit_interval ->
        List.mapi
          (fun i m ->
            let rate = capacity *. m in
            let s, verified, accepted_p99, appends, fsyncs =
              run_point
                ~seed:(bench_seed lxor (0xD15C + (i * 131)))
                ~commit_interval ~rate
            in
            (commit_interval, m, rate, s, verified, accepted_p99, appends,
             fsyncs))
          multiples)
      intervals
  in
  let group_size appends fsyncs =
    if fsyncs = 0 then 0.0 else float_of_int appends /. float_of_int fsyncs
  in
  Harness.Report.print_table
    ~header:
      [
        "commit interval";
        "offered/capacity";
        "goodput req/s";
        "appends/fsync";
        "client p99";
        "accepted p99";
        "ledger";
      ]
    (List.map
       (fun (ci, m, _, s, verified, accepted_p99, appends, fsyncs) ->
         [
           Printf.sprintf "%.1f ms" (ci *. 1e3);
           Printf.sprintf "%.1fx" m;
           Printf.sprintf "%.0f" s.Kv.Loadgen.ok_rate;
           Printf.sprintf "%.1f" (group_size appends fsyncs);
           Harness.Report.fmt_ns s.Kv.Loadgen.client_p99_ns;
           Harness.Report.fmt_ns accepted_p99;
           (if verified then "ok" else "FAIL");
         ])
       points);
  print_newline ();
  let point_json (ci, m, rate, s, verified, accepted_p99, appends, fsyncs) =
    Json.Obj
      [
        ("commit_interval_s", Json.Float ci);
        ("offered_over_capacity", Json.Float m);
        ("offered_rate", Json.Float rate);
        ("requests", Json.Int s.Kv.Loadgen.plan.Kv.Loadgen.n);
        ("goodput", Json.Float s.Kv.Loadgen.ok_rate);
        ("ok", Json.Int s.Kv.Loadgen.ok);
        ("shed", Json.Int (Kv.Loadgen.shed s));
        ("read_only", Json.Int s.Kv.Loadgen.read_only);
        ("deadline_exceeded", Json.Int s.Kv.Loadgen.deadline_exceeded);
        ("wal_appends", Json.Int appends);
        ("wal_fsyncs", Json.Int fsyncs);
        ("appends_per_fsync", Json.Float (group_size appends fsyncs));
        ("client_p50_ns", Json.Float s.Kv.Loadgen.client_p50_ns);
        ("client_p99_ns", Json.Float s.Kv.Loadgen.client_p99_ns);
        ("accepted_p99_ns", Json.Float accepted_p99);
        ("ledger_verified", Json.Bool verified);
      ]
  in
  Json.write_file "BENCH_persist.json"
    (Json.Obj
       [
         ( "meta",
           json_meta ~scale
             [
               ("workers", Json.Int workers);
               ("duration_s", Json.Float duration);
               ("deadline_ns", Json.Int deadline_ns);
               ("capacity_req_per_s", Json.Float capacity);
               ( "commit_intervals_s",
                 Json.List (List.map (fun c -> Json.Float c) intervals) );
             ] );
         ("points", Json.List (List.map point_json points));
       ])

(* Bounded cache tier (BENCH_cache.json): hit-rate vs throughput per
   replacement policy and budget under zipfian skew (DESIGN.md §15).
   Multi-domain read-through traffic against a universe much larger
   than any budget: every miss fabricates a ~64-byte value through the
   loader, so the curve shows what eviction quality buys back.  The
   budget bound and the exact-accounting check are re-asserted on the
   quiescent cache after each run. *)
module Cache_tier = Cache.Make (CT)

let run_cache scale =
  Harness.Report.section "Bounded cache tier (BENCH_cache.json)";
  let per_domain, universe =
    match scale with
    | Suites.Quick -> (150_000, 50_000)
    | Suites.Full -> (1_000_000, 200_000)
  in
  let skew = 0.99 in
  let domains = min 4 (Harness.Parallel.available_domains ()) in
  let streams =
    Array.init domains (fun d ->
        Harness.Workload.zipf_keys
          ~seed:(bench_seed lxor (d * 0x9E3779B9))
          ~n:per_domain ~universe skew)
  in
  let value_of k = String.make 64 (Char.chr (65 + (k land 25))) in
  let budgets = [ 1 lsl 14; 1 lsl 16 ] in
  let policies = [ Cache.Fifo; Cache.Clock_hand; Cache.Slru ] in
  let rows =
    List.concat_map
      (fun budget_words ->
        List.map
          (fun policy ->
            let cfg =
              { (Cache.default_config ~budget_words) with Cache.policy }
            in
            let t = Cache_tier.create ~config:cfg () in
            let load k = Some (value_of k) in
            let elapsed, ops =
              Harness.Parallel.run_counted ~domains (fun d counters ->
                  let keys = streams.(d) in
                  let n = Array.length keys in
                  for i = 0 to n - 1 do
                    ignore
                      (Sys.opaque_identity
                         (Cache_tier.get_or_load t keys.(i) ~load))
                  done;
                  Ct_util.Stripe.add counters d n)
            in
            let s = Cache_tier.stats t in
            let looked = s.Cache.hits + s.Cache.misses in
            let hit_rate =
              if looked = 0 then 0.0
              else float_of_int s.Cache.hits /. float_of_int looked
            in
            let budget_ok =
              s.Cache.used_words <= budget_words
              && Cache_tier.validate t = Ok ()
            in
            if not budget_ok then
              failwith "cache bench: budget or accounting violated";
            ( Cache.policy_name policy,
              budget_words,
              float_of_int ops /. elapsed,
              hit_rate,
              s ))
          policies)
      budgets
  in
  Harness.Report.print_table
    ~header:
      [ "policy"; "budget words"; "Mops/s"; "hit rate"; "evictions"; "resident" ]
    (List.map
       (fun (policy, budget, rate, hit, s) ->
         [
           policy;
           string_of_int budget;
           Printf.sprintf "%.2f" (rate /. 1e6);
           Printf.sprintf "%.3f" hit;
           string_of_int s.Cache.evictions;
           string_of_int s.Cache.resident;
         ])
       rows);
  print_newline ();
  Json.write_file "BENCH_cache.json"
    (Json.Obj
       [
         ( "meta",
           json_meta ~scale
             [
               ("domains", Json.Int domains);
               ("per_domain_ops", Json.Int per_domain);
               ("universe", Json.Int universe);
               ("zipf_s", Json.Float skew);
               ("value_bytes", Json.Int 64);
             ] );
         ( "points",
           Json.List
             (List.map
                (fun (policy, budget, rate, hit, s) ->
                  Json.Obj
                    [
                      ("policy", Json.String policy);
                      ("budget_words", Json.Int budget);
                      ("ops_per_s", Json.Float rate);
                      ("hit_rate", Json.Float hit);
                      ("evictions", Json.Int s.Cache.evictions);
                      ("rejections", Json.Int s.Cache.rejections);
                      ("expirations", Json.Int s.Cache.expirations);
                      ("used_words", Json.Int s.Cache.used_words);
                      ("resident", Json.Int s.Cache.resident);
                      ("budget_ok", Json.Bool true);
                    ])
                rows) );
       ])

(* ----------------------------- driver ------------------------------ *)

let experiments : (string * (Suites.scale -> unit)) list =
  [
    ("fig9", Suites.fig9_footprint);
    ("fig10", Suites.fig10_single_threaded);
    ("fig11", Suites.fig11_insert_high_contention);
    ("fig12", Suites.fig12_insert_low_contention);
    ("fig13", Suites.fig13_parallel_lookup);
    ("hist", Suites.histograms);
    ("theory", Suites.theory);
    ("ablation", Suites.ablation_cache);
    ("ablation-narrow", Suites.ablation_narrow);
    ("mixed", Suites.mixed_workload);
    ("zipf", Suites.zipf_lookup);
    ("remove", Suites.remove_throughput);
    ("trace", Suites.trace_replay);
    ("bechamel", fun _ -> run_bechamel ());
    ("micro-json", run_micro_json);
    ("sweeps", run_sweeps);
    ("obs", run_obs);
    ("cache", run_cache);
    ("serve", run_serve);
    ("persist", run_persist);
  ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let scale = if List.mem "full" args then Suites.Full else Suites.Quick in
  let selected =
    List.filter (fun a -> a <> "full" && a <> "all") args
  in
  let to_run =
    if selected = [] then experiments
    else
      List.filter_map
        (fun name ->
          match List.assoc_opt name experiments with
          | Some f -> Some (name, f)
          | None ->
              Printf.eprintf
                "unknown experiment %S (known: %s)\n" name
                (String.concat ", " (List.map fst experiments));
              exit 2)
        selected
  in
  Printf.printf "cache-tries benchmark driver — scale: %s, domains available: %d\n"
    (match scale with Suites.Quick -> "quick" | Suites.Full -> "full")
    (Harness.Parallel.available_domains ());
  List.iter (fun (_, f) -> f scale) to_run
