(* Property-based tests: the cache-trie against a model (Hashtbl), and
   structural invariants after arbitrary operation sequences. *)

open Ct_util
module CT = Cachetrie.Make (Hashing.Int_key)
module CT_bad = Cachetrie.Make (Hashing.Bad_hash_int)

(* An operation sequence over a small key universe, so that collisions,
   overwrites and removals all occur. *)
type op =
  | Insert of int * int
  | Remove of int
  | Lookup of int
  | Put_if_absent of int * int
  | Replace of int * int

let op_gen =
  let open QCheck.Gen in
  let key = int_bound 63 in
  let value = int_bound 1000 in
  frequency
    [
      (5, map2 (fun k v -> Insert (k, v)) key value);
      (2, map (fun k -> Remove k) key);
      (3, map (fun k -> Lookup k) key);
      (1, map2 (fun k v -> Put_if_absent (k, v)) key value);
      (1, map2 (fun k v -> Replace (k, v)) key value);
    ]

let show_op = function
  | Insert (k, v) -> Printf.sprintf "Insert(%d,%d)" k v
  | Remove k -> Printf.sprintf "Remove(%d)" k
  | Lookup k -> Printf.sprintf "Lookup(%d)" k
  | Put_if_absent (k, v) -> Printf.sprintf "PutIfAbsent(%d,%d)" k v
  | Replace (k, v) -> Printf.sprintf "Replace(%d,%d)" k v

let ops_arb = QCheck.make ~print:(fun l -> String.concat "; " (List.map show_op l))
    QCheck.Gen.(list_size (int_bound 400) op_gen)

(* Run an op sequence against both the map under test and a Hashtbl
   model, checking agreement of every return value and the final
   contents. *)
let run_against_model (type k)
    (module M : Map_intf.CONCURRENT_MAP with type key = k) (to_key : int -> k) ops =
  let t = M.create () in
  let model = Hashtbl.create 64 in
  let expect_opt what a b =
    if a <> b then
      QCheck.Test.fail_reportf "%s: map %s, model %s" what
        (match a with None -> "None" | Some v -> string_of_int v)
        (match b with None -> "None" | Some v -> string_of_int v)
  in
  let apply = function
    | Insert (k, v) ->
        let prev_m = Hashtbl.find_opt model k in
        let prev_t = M.add t (to_key k) v in
        Hashtbl.replace model k v;
        expect_opt "add prev" prev_t prev_m
    | Remove k ->
        let prev_m = Hashtbl.find_opt model k in
        let prev_t = M.remove t (to_key k) in
        Hashtbl.remove model k;
        expect_opt "remove prev" prev_t prev_m
    | Lookup k ->
        expect_opt "lookup" (M.lookup t (to_key k)) (Hashtbl.find_opt model k)
    | Put_if_absent (k, v) ->
        let prev_m = Hashtbl.find_opt model k in
        let prev_t = M.put_if_absent t (to_key k) v in
        if prev_m = None then Hashtbl.replace model k v;
        expect_opt "put_if_absent prev" prev_t prev_m
    | Replace (k, v) ->
        let prev_m = Hashtbl.find_opt model k in
        let prev_t = M.replace t (to_key k) v in
        if prev_m <> None then Hashtbl.replace model k v;
        expect_opt "replace prev" prev_t prev_m
  in
  List.iter apply ops;
  Hashtbl.iter
    (fun k v ->
      if M.lookup t (to_key k) <> Some v then
        QCheck.Test.fail_reportf "final: key %d should map to %d" k v)
    model;
  if M.size t <> Hashtbl.length model then
    QCheck.Test.fail_reportf "final: size %d vs model %d" (M.size t)
      (Hashtbl.length model);
  true

let prop_model ops = run_against_model (module CT) Fun.id ops

let prop_model_bad_hash ops =
  (* Identity hashes: multiplying by 65536 pushes the collisions to
     deep trie levels, exercising expansion and compression chains. *)
  run_against_model (module CT_bad) (fun k -> k * 65536) ops

let prop_invariants ops =
  let t = CT.create () in
  List.iter
    (function
      | Insert (k, v) -> CT.insert t k v
      | Remove k -> ignore (CT.remove t k)
      | Lookup k -> ignore (CT.lookup t k)
      | Put_if_absent (k, v) -> ignore (CT.put_if_absent t k v)
      | Replace (k, v) -> ignore (CT.replace t k v))
    ops;
  match CT.validate t with
  | Ok () -> true
  | Error e -> QCheck.Test.fail_reportf "invariant violated: %s" e

let prop_histogram_counts ops =
  let t = CT.create () in
  let model = Hashtbl.create 64 in
  List.iter
    (function
      | Insert (k, v) | Put_if_absent (k, v) | Replace (k, v) ->
          CT.insert t k v;
          Hashtbl.replace model k v
      | Remove k ->
          ignore (CT.remove t k);
          Hashtbl.remove model k
      | Lookup _ -> ())
    ops;
  Array.fold_left ( + ) 0 (CT.depth_histogram t) = Hashtbl.length model

let prop_to_list_matches ops =
  let t = CT.create () in
  let model = Hashtbl.create 64 in
  List.iter
    (function
      | Insert (k, v) ->
          CT.insert t k v;
          Hashtbl.replace model k v
      | Remove k ->
          ignore (CT.remove t k);
          Hashtbl.remove model k
      | _ -> ())
    ops;
  let trie_list = List.sort compare (CT.to_list t) in
  let model_list =
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) model [])
  in
  trie_list = model_list

let prop_idempotent_double_insert kvs =
  let t = CT.create () in
  List.iter (fun (k, v) -> CT.insert t k v) kvs;
  List.iter (fun (k, v) -> CT.insert t k v) kvs;
  List.for_all (fun (k, _) -> CT.mem t k) kvs
  && CT.size t = List.length (List.sort_uniq compare (List.map fst kvs))

let count = 150

let qtests =
  [
    QCheck.Test.make ~count ~name:"cachetrie agrees with Hashtbl model" ops_arb
      prop_model;
    QCheck.Test.make ~count:60 ~name:"cachetrie (pathological hash) agrees with model"
      ops_arb prop_model_bad_hash;
    QCheck.Test.make ~count ~name:"structural invariants hold after random ops" ops_arb
      prop_invariants;
    QCheck.Test.make ~count ~name:"depth histogram counts every key" ops_arb
      prop_histogram_counts;
    QCheck.Test.make ~count ~name:"to_list matches model bindings" ops_arb
      prop_to_list_matches;
    QCheck.Test.make ~count:100 ~name:"double insert is idempotent"
      QCheck.(list (pair (int_bound 200) int))
      prop_idempotent_double_insert;
  ]

let suite = List.map (QCheck_alcotest.to_alcotest ~long:false) qtests
