(* Ctrie-specific tests: entombment/contraction behaviour and the
   depth histogram (the generic battery covers shared semantics). *)

open Ct_util
module C = Ctrie.Make (Hashing.Int_key)
module C_bad = Ctrie.Make (Hashing.Bad_hash_int)

let check_int = Alcotest.(check int)
let check_opt = Alcotest.(check (option int))
let check_bool = Alcotest.(check bool)

let test_contraction_after_removals () =
  (* Fill enough to create inner CNodes, remove everything; entombment
     plus cleanParent must leave a working, compact trie. *)
  let t = C.create () in
  let n = 5_000 in
  for i = 0 to n - 1 do
    C.insert t i i
  done;
  for i = 0 to n - 1 do
    if C.remove t i <> Some i then Alcotest.failf "remove lost %d" i
  done;
  check_int "empty" 0 (C.size t);
  (* Reuse after total contraction. *)
  for i = 0 to 99 do
    C.insert t i (-i)
  done;
  for i = 0 to 99 do
    check_opt "reusable" (Some (-i)) (C.lookup t i)
  done

let test_tomb_then_lookup () =
  (* Two deep-colliding keys (identity hash): removing one entombs the
     other; lookups must keep finding it through the tomb. *)
  let t = C_bad.create () in
  let k1 = 0b1_00000 and k2 = 0b10_00000 in
  (* same lowest 5 bits *)
  C_bad.insert t k1 1;
  C_bad.insert t k2 2;
  check_opt "both in" (Some 1) (C_bad.lookup t k1);
  check_opt "remove k1" (Some 1) (C_bad.remove t k1);
  check_opt "k2 via tomb" (Some 2) (C_bad.lookup t k2);
  check_opt "k2 update ok" (Some 2) (C_bad.add t k2 22);
  check_opt "k2 new" (Some 22) (C_bad.lookup t k2);
  check_int "one key" 1 (C_bad.size t)

let test_deep_chains () =
  let t = C_bad.create () in
  let n = 2_000 in
  for i = 0 to n - 1 do
    C_bad.insert t (i * 32) i (* share lowest 5 bits -> deep CNode chain *)
  done;
  check_int "size" n (C_bad.size t);
  for i = 0 to n - 1 do
    if C_bad.lookup t (i * 32) <> Some i then Alcotest.failf "lost %d" i
  done

let test_depth_histogram () =
  let t = C.create () in
  let n = 50_000 in
  for i = 0 to n - 1 do
    C.insert t i i
  done;
  let hist = C.depth_histogram t in
  check_int "counts all keys" n (Array.fold_left ( + ) 0 hist);
  (* With 32-way branching most keys sit at depth ~log32 n. *)
  check_bool "no keys at depth 0" true (hist.(0) = 0)

let test_lnode_entomb () =
  let module CC = Ctrie.Make (Hashing.Constant_hash_int) in
  let t = CC.create () in
  CC.insert t 1 10;
  CC.insert t 2 20;
  CC.insert t 3 30;
  check_opt "removed from lnode" (Some 20) (CC.remove t 2);
  check_opt "remaining 1" (Some 10) (CC.lookup t 1);
  check_opt "remaining 3" (Some 30) (CC.lookup t 3);
  (* Down to one: the LNode entombs into a TNode. *)
  check_opt "removed 1" (Some 10) (CC.remove t 1);
  check_opt "survivor" (Some 30) (CC.lookup t 3);
  CC.insert t 4 40;
  check_opt "growable again" (Some 40) (CC.lookup t 4);
  check_int "size 2" 2 (CC.size t)

(* Property: structural invariants hold after arbitrary op sequences,
   including under pathological hashes. *)
let prop_invariants to_key ops =
  let t = C_bad.create () in
  List.iter
    (fun (tag, k, v) ->
      let k = to_key k in
      match tag mod 3 with
      | 0 -> C_bad.insert t k v
      | 1 -> ignore (C_bad.remove t k)
      | _ -> ignore (C_bad.put_if_absent t k v))
    ops;
  match C_bad.validate t with
  | Ok () -> true
  | Error e -> QCheck.Test.fail_reportf "ctrie invariant violated: %s" e

let prop_invariants_mixed ops =
  let t = C.create () in
  List.iter
    (fun (tag, k, v) ->
      match tag mod 3 with
      | 0 -> C.insert t k v
      | 1 -> ignore (C.remove t k)
      | _ -> ignore (C.replace t k v))
    ops;
  match C.validate t with
  | Ok () -> true
  | Error e -> QCheck.Test.fail_reportf "ctrie invariant violated: %s" e

let qchecks =
  List.map
    (QCheck_alcotest.to_alcotest ~long:false)
    [
      QCheck.Test.make ~count:150 ~name:"ctrie invariants (mixed hashes)"
        QCheck.(list (triple small_nat (int_bound 63) (int_bound 999)))
        prop_invariants_mixed;
      QCheck.Test.make ~count:100 ~name:"ctrie invariants (deep identity hashes)"
        QCheck.(list (triple small_nat (int_bound 31) (int_bound 999)))
        (prop_invariants (fun k -> k * 1024));
      QCheck.Test.make ~count:100 ~name:"ctrie invariants (shallow identity hashes)"
        QCheck.(list (triple small_nat (int_bound 31) (int_bound 999)))
        (prop_invariants (fun k -> k));
    ]

let test_validate_after_concurrency () =
  let t = C.create () in
  let barrier = Atomic.make 0 in
  let n_domains = 4 in
  let workers =
    List.init n_domains (fun d ->
        Domain.spawn (fun () ->
            Atomic.incr barrier;
            while Atomic.get barrier < n_domains do
              Domain.cpu_relax ()
            done;
            for round = 1 to 3 do
              for i = 0 to 2_999 do
                match (i + d + round) land 3 with
                | 0 | 1 -> C.insert t i (d + i)
                | 2 -> ignore (C.remove t i)
                | _ -> ignore (C.lookup t i)
              done
            done))
  in
  List.iter Domain.join workers;
  match C.validate t with
  | Ok () -> ()
  | Error e -> Alcotest.failf "post-concurrency invariant: %s" e

let suite =
  qchecks
  @ [
    ("validate_after_concurrency", `Slow, test_validate_after_concurrency);
    ("contraction_after_removals", `Quick, test_contraction_after_removals);
    ("tomb_then_lookup", `Quick, test_tomb_then_lookup);
    ("deep_chains", `Quick, test_deep_chains);
    ("depth_histogram", `Quick, test_depth_histogram);
    ("lnode_entomb", `Quick, test_lnode_entomb);
  ]
