(* Tests for the persistent HAMT and its copy-on-write concurrent
   wrapper (the battery covers the shared concurrent-map semantics of
   the wrapper; here we test persistence itself). *)

open Ct_util
module P = Hamts.Hamt.Make (Hashing.Int_key)
module P_bad = Hamts.Hamt.Make (Hashing.Bad_hash_int)
module P_collide = Hamts.Hamt.Make (Hashing.Constant_hash_int)
module CW = Hamts.Cow_map.Make (Hashing.Int_key)

let check_int = Alcotest.(check int)
let check_opt = Alcotest.(check (option int))
let check_bool = Alcotest.(check bool)

let assert_valid name t =
  match P.validate t with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: %s" name e

(* --------------------------- persistence --------------------------- *)

let test_versions_are_independent () =
  let v0 = P.empty in
  let v1, _ = P.add v0 1 10 in
  let v2, _ = P.add v1 2 20 in
  let v3, _ = P.remove v2 1 in
  let v4, _ = P.add v2 1 99 in
  check_opt "v0 has nothing" None (P.find v0 1);
  check_opt "v1 has 1" (Some 10) (P.find v1 1);
  check_opt "v1 lacks 2" None (P.find v1 2);
  check_opt "v2 has both" (Some 20) (P.find v2 2);
  check_opt "v3 dropped 1" None (P.find v3 1);
  check_opt "v3 kept 2" (Some 20) (P.find v3 2);
  check_opt "v4 rebound 1" (Some 99) (P.find v4 1);
  check_opt "v2 unchanged by v4" (Some 10) (P.find v2 1);
  List.iter (assert_valid "versions") [ v0; v1; v2; v3; v4 ]

let test_add_returns_previous () =
  let v1, p1 = P.add P.empty 5 50 in
  let _, p2 = P.add v1 5 51 in
  check_opt "fresh" None p1;
  check_opt "prev" (Some 50) p2

let test_remove_absent_is_noop () =
  let v1, _ = P.add P.empty 1 1 in
  let v2, prev = P.remove v1 42 in
  check_opt "no binding" None prev;
  check_bool "same version returned" true (v1 == v2)

let test_many_keys_and_histogram () =
  let n = 30_000 in
  let t = ref P.empty in
  for i = 0 to n - 1 do
    t := fst (P.add !t i i)
  done;
  check_int "cardinal" n (P.cardinal !t);
  for i = 0 to n - 1 do
    if P.find !t i <> Some i then Alcotest.failf "lost %d" i
  done;
  check_int "histogram total" n (Array.fold_left ( + ) 0 (P.depth_histogram !t));
  assert_valid "30k" !t

let test_mass_removal_collapses () =
  let n = 10_000 in
  let t = ref P.empty in
  for i = 0 to n - 1 do
    t := fst (P.add !t i i)
  done;
  for i = 100 to n - 1 do
    t := fst (P.remove !t i)
  done;
  check_int "survivors" 100 (P.cardinal !t);
  assert_valid "collapsed" !t;
  let hist = P.depth_histogram !t in
  (* 100 keys in a 32-way trie sit at depths 1-3 once canonical
     (~4% at depth 1, ~87% at 2, ~9% at 3). *)
  check_bool
    (Printf.sprintf "canonical shallow: d1=%d d2=%d d3=%d" hist.(1) hist.(2) hist.(3))
    true
    (hist.(1) + hist.(2) + hist.(3) = 100)

let test_collisions () =
  let t = ref P_collide.empty in
  for i = 0 to 9 do
    t := fst (P_collide.add !t i (i * 2))
  done;
  check_int "ten colliders" 10 (P_collide.cardinal !t);
  for i = 0 to 9 do
    check_opt "collider" (Some (i * 2)) (P_collide.find !t i)
  done;
  for i = 0 to 8 do
    t := fst (P_collide.remove !t i)
  done;
  check_opt "last one" (Some 18) (P_collide.find !t 9);
  match P_collide.validate !t with
  | Ok () -> ()
  | Error e -> Alcotest.failf "collision validate: %s" e

let test_deep_identity_hashes () =
  let t = ref P_bad.empty in
  for i = 0 to 999 do
    t := fst (P_bad.add !t (i * 1024) i)
  done;
  for i = 0 to 999 do
    if P_bad.find !t (i * 1024) <> Some i then Alcotest.failf "deep lost %d" i
  done;
  match P_bad.validate !t with
  | Ok () -> ()
  | Error e -> Alcotest.failf "deep validate: %s" e

(* Property: HAMT agrees with Map and stays valid across versions. *)
let prop_model ops =
  let module IM = Map.Make (Int) in
  let t = ref P.empty and m = ref IM.empty in
  List.iter
    (fun (tag, k, v) ->
      match tag mod 3 with
      | 0 ->
          t := fst (P.add !t k v);
          m := IM.add k v !m
      | 1 ->
          t := fst (P.remove !t k);
          m := IM.remove k !m
      | _ ->
          if P.find !t k <> IM.find_opt k !m then
            QCheck.Test.fail_reportf "find mismatch on %d" k)
    ops;
  (match P.validate !t with
  | Ok () -> ()
  | Error e -> QCheck.Test.fail_reportf "invariants: %s" e);
  P.cardinal !t = IM.cardinal !m
  && List.sort compare (P.to_list !t)
     = List.sort compare (IM.bindings !m)

let qchecks =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:150 ~name:"hamt agrees with Map"
         QCheck.(list (triple small_nat (int_bound 63) (int_bound 999)))
         prop_model);
  ]

(* --------------------------- cow wrapper --------------------------- *)

let test_cow_snapshot () =
  let t = CW.create () in
  for i = 0 to 99 do
    CW.insert t i i
  done;
  let s = CW.snapshot t in
  for i = 0 to 99 do
    CW.insert t i (-i)
  done;
  CW.insert t 1000 1;
  for i = 0 to 99 do
    if CW.lookup s i <> Some i then Alcotest.failf "cow snapshot key %d changed" i
  done;
  check_int "snapshot size" 100 (CW.size s);
  check_int "live size" 101 (CW.size t)

let test_cow_version_counts_writes () =
  let t = CW.create () in
  check_int "v0" 0 (CW.version t);
  CW.insert t 1 1;
  CW.insert t 2 2;
  ignore (CW.remove t 1);
  check_int "three commits" 3 (CW.version t);
  ignore (CW.remove t 42);
  check_int "no-op remove does not commit" 3 (CW.version t);
  ignore (CW.put_if_absent t 2 99);
  check_int "declined pia does not commit" 3 (CW.version t)

let test_cow_o1_size () =
  let t = CW.create () in
  for i = 0 to 9_999 do
    CW.insert t i i
  done;
  check_int "cardinality tracked" 10_000 (CW.size t)

let suite =
  qchecks
  @ [
      ("versions_are_independent", `Quick, test_versions_are_independent);
      ("add_returns_previous", `Quick, test_add_returns_previous);
      ("remove_absent_is_noop", `Quick, test_remove_absent_is_noop);
      ("many_keys_and_histogram", `Quick, test_many_keys_and_histogram);
      ("mass_removal_collapses", `Quick, test_mass_removal_collapses);
      ("collisions", `Quick, test_collisions);
      ("deep_identity_hashes", `Quick, test_deep_identity_hashes);
      ("cow_snapshot", `Quick, test_cow_snapshot);
      ("cow_version_counts_writes", `Quick, test_cow_version_counts_writes);
      ("cow_o1_size", `Quick, test_cow_o1_size);
    ]
