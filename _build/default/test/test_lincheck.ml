(* Tests for the linearizability checker itself, plus linearizability
   runs against all four concurrent maps (paper Section 4.2). *)

open Lincheck

let check_bool = Alcotest.(check bool)

(* ------------------- the sequential specification ------------------ *)

let test_sequential_spec () =
  let m0 = [] in
  let m1, r1 = sequential_apply m0 (Insert (1, 10)) in
  check_bool "insert new" true (r1 = None);
  let _, r2 = sequential_apply m1 (Lookup 1) in
  check_bool "lookup hit" true (r2 = Some 10);
  let m3, r3 = sequential_apply m1 (Put_if_absent (1, 99)) in
  check_bool "pia declines" true (r3 = Some 10 && List.assoc 1 m3 = 10);
  let m4, r4 = sequential_apply m1 (Replace (1, 11)) in
  check_bool "replace hits" true (r4 = Some 10 && List.assoc 1 m4 = 11);
  let m5, r5 = sequential_apply m1 (Remove 1) in
  check_bool "remove" true (r5 = Some 10 && m5 = []);
  let _, r6 = sequential_apply [] (Replace (7, 1)) in
  check_bool "replace miss" true (r6 = None)

(* ---------------- checker on hand-crafted histories ---------------- *)

let ev thread op result inv res = { thread; op; result; inv; res }

let test_accepts_sequential_history () =
  let h =
    [
      ev 0 (Insert (1, 10)) None 0 1;
      ev 0 (Lookup 1) (Some 10) 2 3;
      ev 0 (Remove 1) (Some 10) 4 5;
      ev 0 (Lookup 1) None 6 7;
    ]
  in
  check_bool "legal sequential" true (check h)

let test_accepts_overlapping_history () =
  (* Two overlapping inserts on one key: either order is legal as long
     as results are consistent with some order. *)
  let h =
    [
      ev 0 (Insert (1, 10)) None 0 3;
      ev 1 (Insert (1, 20)) (Some 10) 1 4;
      ev 0 (Lookup 1) (Some 20) 5 6;
    ]
  in
  check_bool "overlap linearizes" true (check h)

let test_rejects_stale_read () =
  (* A lookup that starts after a completed remove must not see the
     removed value. *)
  let h =
    [
      ev 0 (Insert (1, 10)) None 0 1;
      ev 0 (Remove 1) (Some 10) 2 3;
      ev 1 (Lookup 1) (Some 10) 4 5;
    ]
  in
  check_bool "stale read rejected" false (check h)

let test_rejects_lost_update () =
  (* Both threads' put_if_absent claiming to win is impossible. *)
  let h =
    [
      ev 0 (Put_if_absent (1, 10)) None 0 2;
      ev 1 (Put_if_absent (1, 20)) None 1 3;
    ]
  in
  check_bool "double winner rejected" false (check h)

let test_rejects_value_from_nowhere () =
  let h = [ ev 0 (Lookup 5) (Some 42) 0 1 ] in
  check_bool "phantom value rejected" false (check h)

let test_respects_program_order () =
  (* Within one thread the later op cannot linearize first. *)
  let h =
    [
      ev 0 (Insert (1, 10)) None 0 1;
      ev 0 (Insert (1, 20)) (Some 10) 2 3;
      ev 0 (Lookup 1) (Some 10) 4 5;
    ]
  in
  check_bool "final lookup must see 20" false (check h)

(* ------------------- real structures, random runs ------------------ *)

module CT = Cachetrie.Make (Ct_util.Hashing.Int_key)
module CTR = Ctrie.Make (Ct_util.Hashing.Int_key)
module SO = Chm.Split_ordered.Make (Ct_util.Hashing.Int_key)
module ST = Chm.Striped.Make (Ct_util.Hashing.Int_key)
module SL = Skiplist.Make (Ct_util.Hashing.Int_key)
module CW = Hamts.Cow_map.Make (Ct_util.Hashing.Int_key)
module CSN = Ctrie_snap.Make (Ct_util.Hashing.Int_key)

let random_battery name (module M : IMAP) =
  ( Printf.sprintf "linearizable: %s" name,
    `Slow,
    fun () ->
      for seed = 1 to 30 do
        if
          not
            (run_random (module M) ~seed ~threads:3 ~ops_per_thread:5 ~key_range:3)
        then Alcotest.failf "%s: non-linearizable history at seed %d" name seed
      done )

let suite =
  [
    ("sequential_spec", `Quick, test_sequential_spec);
    ("accepts_sequential_history", `Quick, test_accepts_sequential_history);
    ("accepts_overlapping_history", `Quick, test_accepts_overlapping_history);
    ("rejects_stale_read", `Quick, test_rejects_stale_read);
    ("rejects_lost_update", `Quick, test_rejects_lost_update);
    ("rejects_value_from_nowhere", `Quick, test_rejects_value_from_nowhere);
    ("respects_program_order", `Quick, test_respects_program_order);
    random_battery "cachetrie" (module CT);
    random_battery "ctrie" (module CTR);
    random_battery "chm" (module SO);
    random_battery "chm-striped" (module ST);
    random_battery "skiplist" (module SL);
    random_battery "cow-hamt" (module CW);
    random_battery "ctrie-snap" (module CSN);
  ]
