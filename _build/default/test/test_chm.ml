(* Hash-map-specific tests: bucket growth, split-order key layout, and
   striped-table resize under concurrency. *)

open Ct_util
module SO = Chm.Split_ordered.Make (Hashing.Int_key)
module ST = Chm.Striped.Make (Hashing.Int_key)

let check_int = Alcotest.(check int)
let check_opt = Alcotest.(check (option int))
let check_bool = Alcotest.(check bool)

let test_split_ordered_growth () =
  let t = SO.create () in
  let before = SO.bucket_count t in
  for i = 0 to 9_999 do
    SO.insert t i i
  done;
  let after = SO.bucket_count t in
  check_bool
    (Printf.sprintf "table grew (%d -> %d)" before after)
    true (after > before);
  check_bool "power of two" true (Bits.is_power_of_two after);
  for i = 0 to 9_999 do
    if SO.lookup t i <> Some i then Alcotest.failf "lost %d after growth" i
  done

let test_split_ordered_remove_then_grow () =
  let t = SO.create () in
  for i = 0 to 4_999 do
    SO.insert t i i
  done;
  for i = 0 to 4_999 do
    if SO.remove t i <> Some i then Alcotest.failf "remove lost %d" i
  done;
  check_int "empty" 0 (SO.size t);
  (* Growth state persists; reuse must still work. *)
  for i = 0 to 4_999 do
    SO.insert t i (i + 1)
  done;
  for i = 0 to 4_999 do
    if SO.lookup t i <> Some (i + 1) then Alcotest.failf "reinsert lost %d" i
  done

let test_split_ordered_concurrent_growth () =
  (* Growth while other domains insert: lock-free table doubling must
     not lose bindings. *)
  let t = SO.create () in
  let n_domains = 4 and per = 8_000 in
  let barrier = Atomic.make 0 in
  let workers =
    List.init n_domains (fun d ->
        Domain.spawn (fun () ->
            Atomic.incr barrier;
            while Atomic.get barrier < n_domains do
              Domain.cpu_relax ()
            done;
            for i = 0 to per - 1 do
              SO.insert t ((d * per) + i) d
            done))
  in
  List.iter Domain.join workers;
  check_int "all present" (n_domains * per) (SO.size t);
  check_bool "grew" true (SO.bucket_count t > 16)

let test_striped_growth () =
  let t = ST.create () in
  let before = ST.bucket_count t in
  for i = 0 to 9_999 do
    ST.insert t i i
  done;
  check_bool "grew" true (ST.bucket_count t > before);
  for i = 0 to 9_999 do
    if ST.lookup t i <> Some i then Alcotest.failf "striped lost %d" i
  done

let test_striped_concurrent_resize () =
  let t = ST.create () in
  let n_domains = 4 and per = 5_000 in
  let barrier = Atomic.make 0 in
  let workers =
    List.init n_domains (fun d ->
        Domain.spawn (fun () ->
            Atomic.incr barrier;
            while Atomic.get barrier < n_domains do
              Domain.cpu_relax ()
            done;
            for i = 0 to per - 1 do
              ST.insert t ((d * per) + i) d;
              if i land 7 = 0 then ignore (ST.lookup t (d * per))
            done))
  in
  List.iter Domain.join workers;
  check_int "all present" (n_domains * per) (ST.size t)

let test_wait_free_read_during_writes () =
  (* Readers on the split-ordered map never block or fail while a
     writer churns the same bucket region. *)
  let t = SO.create () in
  for i = 0 to 99 do
    SO.insert t i i
  done;
  let stop = Atomic.make false in
  let writer =
    Domain.spawn (fun () ->
        let i = ref 0 in
        while not (Atomic.get stop) do
          SO.insert t (100 + (!i mod 1000)) !i;
          ignore (SO.remove t (100 + ((!i + 500) mod 1000)));
          incr i
        done)
  in
  for _pass = 1 to 200 do
    for i = 0 to 99 do
      if SO.lookup t i <> Some i then begin
        Atomic.set stop true;
        Alcotest.failf "stable key %d disappeared" i
      end
    done
  done;
  Atomic.set stop true;
  Domain.join writer

let prop_invariants ops =
  let t = SO.create () in
  List.iter
    (fun (tag, k, v) ->
      match tag mod 3 with
      | 0 -> SO.insert t k v
      | 1 -> ignore (SO.remove t k)
      | _ -> ignore (SO.replace_if t k ~expected:v (v + 1)))
    ops;
  match SO.validate t with
  | Ok () -> true
  | Error e -> QCheck.Test.fail_reportf "split-ordered invariant violated: %s" e

let qchecks =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:150 ~name:"split-ordered invariants after random ops"
         QCheck.(list (triple small_nat (int_bound 63) (int_bound 999)))
         prop_invariants);
  ]

let test_validate_after_concurrency () =
  let t = SO.create () in
  let barrier = Atomic.make 0 in
  let n_domains = 4 in
  let workers =
    List.init n_domains (fun d ->
        Domain.spawn (fun () ->
            Atomic.incr barrier;
            while Atomic.get barrier < n_domains do
              Domain.cpu_relax ()
            done;
            for round = 1 to 3 do
              for i = 0 to 1_999 do
                match (i + d + round) land 3 with
                | 0 | 1 -> SO.insert t i (d + i)
                | 2 -> ignore (SO.remove t i)
                | _ -> ignore (SO.lookup t i)
              done
            done))
  in
  List.iter Domain.join workers;
  match SO.validate t with
  | Ok () -> ()
  | Error e -> Alcotest.failf "post-concurrency split-ordered invariant: %s" e

let suite =
  qchecks
  @ [
    ("validate_after_concurrency", `Slow, test_validate_after_concurrency);
    ("split_ordered_growth", `Quick, test_split_ordered_growth);
    ("split_ordered_remove_then_grow", `Quick, test_split_ordered_remove_then_grow);
    ("split_ordered_concurrent_growth", `Slow, test_split_ordered_concurrent_growth);
    ("striped_growth", `Quick, test_striped_growth);
    ("striped_concurrent_resize", `Slow, test_striped_concurrent_resize);
    ("wait_free_read_during_writes", `Slow, test_wait_free_read_during_writes);
  ]
