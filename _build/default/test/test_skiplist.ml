(* Skip-list-specific tests: tower heights, hash-ordered iteration,
   dead-node burial. *)

open Ct_util
module S = Skiplist.Make (Hashing.Int_key)
module S_collide = Skiplist.Make (Hashing.Constant_hash_int)

let check_int = Alcotest.(check int)
let check_opt = Alcotest.(check (option int))
let check_bool = Alcotest.(check bool)

let test_height_distribution () =
  let t = S.create () in
  let n = 20_000 in
  for i = 0 to n - 1 do
    S.insert t i i
  done;
  let hist = S.height_histogram t in
  check_int "towers = keys" n (Array.fold_left ( + ) 0 hist);
  (* Geometric decay with p = 1/2: roughly half the towers have
     height 1, a quarter height 2, ... *)
  check_bool "height-1 majority" true
    (float_of_int hist.(0) /. float_of_int n > 0.4
    && float_of_int hist.(0) /. float_of_int n < 0.6);
  check_bool "decay" true (hist.(0) > hist.(1) && hist.(1) > hist.(2))

let test_reinsert_after_node_death () =
  (* Removing the only binding kills the tower; reinserting the same
     hash must build a fresh one. *)
  let t = S.create () in
  S.insert t 42 1;
  check_opt "in" (Some 1) (S.lookup t 42);
  check_opt "out" (Some 1) (S.remove t 42);
  check_opt "gone" None (S.lookup t 42);
  S.insert t 42 2;
  check_opt "back" (Some 2) (S.lookup t 42);
  check_int "size" 1 (S.size t)

let test_shared_hash_bindings () =
  (* All keys share one tower; binding-list updates must not lose
     entries. *)
  let t = S_collide.create () in
  for i = 0 to 30 do
    S_collide.insert t i (i * 3)
  done;
  check_int "all present" 31 (S_collide.size t);
  (* The height histogram sees one tower only. *)
  let hist = S_collide.height_histogram t in
  check_int "single tower" 1 (Array.fold_left ( + ) 0 hist);
  for i = 0 to 29 do
    ignore (S_collide.remove t i)
  done;
  check_opt "survivor" (Some 90) (S_collide.lookup t 30)

let test_interleaved_remove_insert () =
  let t = S.create () in
  for i = 0 to 999 do
    S.insert t i i
  done;
  (* Remove evens, verify odds, reinsert evens doubled. *)
  for i = 0 to 499 do
    ignore (S.remove t (2 * i))
  done;
  check_int "half" 500 (S.size t);
  for i = 0 to 499 do
    if S.lookup t ((2 * i) + 1) <> Some ((2 * i) + 1) then
      Alcotest.failf "odd %d lost" ((2 * i) + 1)
  done;
  for i = 0 to 499 do
    S.insert t (2 * i) (4 * i)
  done;
  for i = 0 to 499 do
    if S.lookup t (2 * i) <> Some (4 * i) then Alcotest.failf "even %d wrong" (2 * i)
  done

let test_concurrent_tower_churn () =
  (* Hammer a small hash range so towers die and get rebuilt under
     contention. *)
  let t = S.create () in
  let barrier = Atomic.make 0 in
  let n_domains = 4 in
  let workers =
    List.init n_domains (fun d ->
        Domain.spawn (fun () ->
            Atomic.incr barrier;
            while Atomic.get barrier < n_domains do
              Domain.cpu_relax ()
            done;
            for round = 1 to 500 do
              for k = 0 to 9 do
                S.insert t k ((d * 1_000_000) + round);
                if (k + d + round) land 1 = 0 then ignore (S.remove t k);
                ignore (S.lookup t k)
              done
            done))
  in
  List.iter Domain.join workers;
  for k = 0 to 9 do
    S.insert t k k
  done;
  for k = 0 to 9 do
    check_opt "converged" (Some k) (S.lookup t k)
  done;
  check_int "ten keys" 10 (S.size t)

let prop_invariants ops =
  let t = S.create () in
  List.iter
    (fun (tag, k, v) ->
      match tag mod 3 with
      | 0 -> S.insert t k v
      | 1 -> ignore (S.remove t k)
      | _ -> ignore (S.put_if_absent t k v))
    ops;
  match S.validate t with
  | Ok () -> true
  | Error e -> QCheck.Test.fail_reportf "skiplist invariant violated: %s" e

let qchecks =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:150 ~name:"skiplist invariants after random ops"
         QCheck.(list (triple small_nat (int_bound 63) (int_bound 999)))
         prop_invariants);
  ]

let test_validate_after_concurrency () =
  let t = S.create () in
  let barrier = Atomic.make 0 in
  let n_domains = 4 in
  let workers =
    List.init n_domains (fun d ->
        Domain.spawn (fun () ->
            Atomic.incr barrier;
            while Atomic.get barrier < n_domains do
              Domain.cpu_relax ()
            done;
            for round = 1 to 3 do
              for i = 0 to 1_999 do
                match (i + d + round) land 3 with
                | 0 | 1 -> S.insert t i (d + i)
                | 2 -> ignore (S.remove t i)
                | _ -> ignore (S.lookup t i)
              done
            done))
  in
  List.iter Domain.join workers;
  match S.validate t with
  | Ok () -> ()
  | Error e -> Alcotest.failf "post-concurrency skiplist invariant: %s" e

let suite =
  qchecks
  @ [
    ("validate_after_concurrency", `Slow, test_validate_after_concurrency);
    ("height_distribution", `Quick, test_height_distribution);
    ("reinsert_after_node_death", `Quick, test_reinsert_after_node_death);
    ("shared_hash_bindings", `Quick, test_shared_hash_bindings);
    ("interleaved_remove_insert", `Quick, test_interleaved_remove_insert);
    ("concurrent_tower_churn", `Slow, test_concurrent_tower_churn);
  ]
