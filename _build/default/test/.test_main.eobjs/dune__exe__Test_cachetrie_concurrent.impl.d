test/test_cachetrie_concurrent.ml: Alcotest Array Atomic Cachetrie Ct_util Domain Hashing Hashtbl List Printf Rng
