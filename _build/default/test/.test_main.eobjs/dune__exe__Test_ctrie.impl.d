test/test_ctrie.ml: Alcotest Array Atomic Ct_util Ctrie Domain Hashing List QCheck QCheck_alcotest
