test/test_analysis.ml: Alcotest Analysis Array Cachetrie Ct_util List Printf String
