test/test_harness.ml: Alcotest Array Atomic Cachetrie Ct_util Domain Fun Harness List String
