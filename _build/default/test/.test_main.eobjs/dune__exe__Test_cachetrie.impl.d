test/test_cachetrie.ml: Alcotest Analysis Array Cachetrie Ct_util Hashing List Printf Seq
