test/test_ctrie_snap.ml: Alcotest Array Atomic Ct_util Ctrie_snap Domain Fun Hashing Hashtbl List Rng
