test/test_battery.ml: Alcotest Array Atomic Cachetrie Chm Ct_util Ctrie Ctrie_snap Domain Hamts Hashing Hashtbl List Map_intf Printf QCheck QCheck_alcotest Skiplist
