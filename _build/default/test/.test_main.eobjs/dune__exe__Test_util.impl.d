test/test_util.ml: Alcotest Array Backoff Bits Ct_util Fun Hashing List Printf Rng Stats
