test/test_cachetrie_props.ml: Array Cachetrie Ct_util Fun Hashing Hashtbl List Map_intf Printf QCheck QCheck_alcotest String
