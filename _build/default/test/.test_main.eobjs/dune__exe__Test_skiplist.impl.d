test/test_skiplist.ml: Alcotest Array Atomic Ct_util Domain Hashing List QCheck QCheck_alcotest Skiplist
