test/test_hamt.ml: Alcotest Array Ct_util Hamts Hashing Int List Map Printf QCheck QCheck_alcotest
