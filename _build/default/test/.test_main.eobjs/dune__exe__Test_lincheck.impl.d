test/test_lincheck.ml: Alcotest Cachetrie Chm Ct_util Ctrie Ctrie_snap Hamts Lincheck List Printf Skiplist
