test/test_chm.ml: Alcotest Atomic Bits Chm Ct_util Domain Hashing List Printf QCheck QCheck_alcotest
