(* Tests for the Section 4.1 theory: Theorem 4.1's distribution,
   Theorem 4.2's interval, Theorem 4.3's expected depth, and the
   agreement between the analytic distribution and real tries. *)

module DT = Analysis.Depth_theory
module Hist = Analysis.Histogram
module CT = Cachetrie.Make (Ct_util.Hashing.Int_key)

let check_bool = Alcotest.(check bool)
let feq eps msg a b = Alcotest.(check (float eps)) msg a b

let test_p_is_distribution () =
  (* p(.,n) sums to ~1 for a range of n. *)
  List.iter
    (fun n ->
      let total = ref 0.0 in
      for d = 0 to 20 do
        let p = DT.p d n in
        check_bool "p >= 0" true (p >= 0.0);
        total := !total +. p
      done;
      feq 1e-6 (Printf.sprintf "sums to 1 (n=%d)" n) 1.0 !total)
    [ 1; 10; 1_000; 100_000; 10_000_000 ]

let test_p_small_cases () =
  (* n = 1 (two keys total): with probability 15/16 the other key
     differs in the first nibble, so both leaves hang off the root
     (the paper's depth 0, trie level 4). *)
  feq 1e-12 "two keys split at root" (15.0 /. 16.0) (DT.p 0 1);
  (* ... and collide through exactly the first nibble w.p. 15/256. *)
  feq 1e-12 "one-nibble collision" (15.0 /. 256.0) (DT.p 1 1);
  (* The formula is degenerate for n = 0 (it describes n+1 >= 2 keys). *)
  feq 1e-12 "n=0 degenerate" 0.0 (DT.p 0 0)

let test_expected_depth_log16 () =
  (* Theorem 4.3: E[d](n) = log16 n + O(1). *)
  List.iter
    (fun n ->
      let expected = DT.expected_depth n in
      let log16 = log (float_of_int n) /. log 16.0 in
      check_bool
        (Printf.sprintf "E[d]=%.2f vs log16=%.2f (n=%d)" expected log16 n)
        true
        (abs_float (expected -. log16) < 1.5))
    [ 1_000; 100_000; 1_000_000; 100_000_000 ]

let test_mu_interval () =
  (* Theorem 4.2: for large n, mu(n) within (0.8745, 0.9746). *)
  let lo, hi = DT.theorem42_interval in
  List.iter
    (fun n ->
      let m = DT.mu n in
      check_bool
        (Printf.sprintf "mu(%d)=%.4f in interval" n m)
        true
        (m >= lo -. 0.002 && m <= hi +. 0.002))
    [ 10_000; 100_000; 1_000_000; 10_000_000; 100_000_000 ]

let test_best_pair_tracks_log () =
  List.iter
    (fun (n, expected_d) ->
      Alcotest.(check int)
        (Printf.sprintf "best pair for n=%d" n)
        expected_d (DT.best_pair n))
    [ (100, 1); (10_000, 3); (1_000_000, 4) ]

let test_distribution_array () =
  let d = DT.distribution 100_000 ~max_depth:8 in
  Alcotest.(check int) "length" 9 (Array.length d);
  feq 1e-4 "sums to ~1" 1.0 (Array.fold_left ( +. ) 0.0 d);
  let dl = DT.distribution_levels 100_000 ~max_depth:9 in
  feq 1e-12 "level 0 empty" 0.0 dl.(0);
  feq 1e-12 "levels shifted" (DT.p 0 100_000) dl.(1)

let test_empirical_matches_theory () =
  (* A real cache-trie with mixed hashes matches Theorem 4.1: compare
     per-depth fractions within a small absolute tolerance. *)
  let n = 100_000 in
  let t = CT.create () in
  for i = 0 to n - 1 do
    CT.insert t i i
  done;
  let observed = Hist.normalize (CT.depth_histogram t) in
  let expected = DT.distribution_levels n ~max_depth:(Array.length observed - 1) in
  Array.iteri
    (fun d obs ->
      let exp_p = expected.(d) in
      check_bool
        (Printf.sprintf "depth %d: obs %.4f vs theory %.4f" d obs exp_p)
        true
        (abs_float (obs -. exp_p) < 0.02))
    observed

let test_top_pair_of_real_trie () =
  let n = 200_000 in
  let t = CT.create () in
  for i = 0 to n - 1 do
    CT.insert t i i
  done;
  let _, frac = Hist.top_pair_fraction (CT.depth_histogram t) in
  check_bool
    (Printf.sprintf "adjacent pair holds %.3f" frac)
    true (frac > 0.87)

let test_chi_square () =
  let expected = [| 0.5; 0.5 |] in
  Alcotest.(check (float 1e-9)) "perfect fit" 0.0
    (DT.chi_square_distance expected [| 100; 100 |]);
  check_bool "bad fit is large" true
    (DT.chi_square_distance expected [| 200; 0 |] > 100.0)

let test_histogram_render () =
  let s = Hist.render ~label:"size 42" [| 0; 10; 30; 2 |] in
  check_bool "has label" true
    (String.length s > 0
    && String.sub s 0 13 = ":: size 42 ::");
  check_bool "levels are multiples of 4" true
    (let lines = String.split_on_char '\n' s in
     List.exists (fun l -> String.length l > 3 && String.trim l <> ""
                           && String.sub (String.trim l) 0 2 = "8:") lines)

let suite =
  [
    ("p_is_distribution", `Quick, test_p_is_distribution);
    ("p_small_cases", `Quick, test_p_small_cases);
    ("expected_depth_log16", `Quick, test_expected_depth_log16);
    ("mu_interval_thm42", `Quick, test_mu_interval);
    ("best_pair_tracks_log", `Quick, test_best_pair_tracks_log);
    ("distribution_array", `Quick, test_distribution_array);
    ("empirical_matches_theory", `Slow, test_empirical_matches_theory);
    ("top_pair_of_real_trie", `Slow, test_top_pair_of_real_trie);
    ("chi_square", `Quick, test_chi_square);
    ("histogram_render", `Quick, test_histogram_render);
  ]
