(* Tests for the snapshotting Ctrie (PPoPP 2012): GCAS/RDCSS snapshot
   semantics on top of the shared battery coverage. *)

open Ct_util
module CS = Ctrie_snap.Make (Hashing.Int_key)

let check_int = Alcotest.(check int)
let check_opt = Alcotest.(check (option int))
let check_bool = Alcotest.(check bool)

let test_snapshot_isolates_original () =
  let t = CS.create () in
  for i = 0 to 999 do
    CS.insert t i i
  done;
  let s = CS.snapshot t in
  (* Mutate the original heavily. *)
  for i = 0 to 999 do
    CS.insert t i (i * 100)
  done;
  for i = 1000 to 1999 do
    CS.insert t i i
  done;
  for i = 0 to 499 do
    ignore (CS.remove t i)
  done;
  (* The snapshot still shows the old world. *)
  check_int "snapshot size" 1000 (CS.size s);
  for i = 0 to 999 do
    if CS.lookup s i <> Some i then Alcotest.failf "snapshot key %d changed" i
  done;
  check_opt "snapshot lacks new keys" None (CS.lookup s 1500)

let test_snapshot_isolates_snapshot () =
  let t = CS.create () in
  for i = 0 to 499 do
    CS.insert t i i
  done;
  let s = CS.snapshot t in
  (* Mutate the snapshot; the original must not see it. *)
  for i = 0 to 499 do
    CS.insert s i (-i)
  done;
  CS.insert s 9999 1;
  for i = 0 to 499 do
    if CS.lookup t i <> Some i then Alcotest.failf "original key %d changed" i
  done;
  check_opt "original lacks snapshot-only key" None (CS.lookup t 9999);
  check_opt "snapshot sees own writes" (Some (-42)) (CS.lookup s 42)

let test_snapshot_of_snapshot () =
  let t = CS.create () in
  CS.insert t 1 1;
  let s1 = CS.snapshot t in
  CS.insert t 2 2;
  let s2 = CS.snapshot t in
  CS.insert t 3 3;
  let s3 = CS.snapshot s1 in
  CS.insert s1 4 4;
  check_int "t has 3" 3 (CS.size t);
  check_int "s1 has 2 (1 + own insert)" 2 (CS.size s1);
  check_int "s2 has 2" 2 (CS.size s2);
  check_int "s3 has 1" 1 (CS.size s3);
  check_opt "s3 untouched by s1's insert" None (CS.lookup s3 4)

let test_empty_snapshot () =
  let t = CS.create () in
  let s = CS.snapshot t in
  check_int "empty" 0 (CS.size s);
  CS.insert s 1 1;
  check_int "snapshot usable" 1 (CS.size s);
  check_int "original still empty" 0 (CS.size t)

let test_snapshot_prefix_consistency () =
  (* One writer inserts keys in ascending order while another domain
     takes snapshots: every snapshot must be a prefix {0..j-1} of the
     insert sequence — the linearizability of snapshot made visible. *)
  let t = CS.create () in
  let n = 20_000 in
  let barrier = Atomic.make 0 in
  let arrive () =
    Atomic.incr barrier;
    while Atomic.get barrier < 2 do
      Domain.cpu_relax ()
    done
  in
  let writer =
    Domain.spawn (fun () ->
        arrive ();
        for i = 0 to n - 1 do
          CS.insert t i i
        done)
  in
  let snapshotter =
    Domain.spawn (fun () ->
        arrive ();
        let sizes = ref [] in
        for _ = 1 to 50 do
          let s = CS.snapshot t in
          let contents = CS.to_list s in
          let size = List.length contents in
          (* Prefix property: exactly the keys 0..size-1. *)
          let sorted = List.sort compare (List.map fst contents) in
          if sorted <> List.init size Fun.id then
            failwith "snapshot is not a prefix of the insertion order";
          sizes := size :: !sizes
        done;
        List.rev !sizes)
  in
  Domain.join writer;
  let sizes = Domain.join snapshotter in
  (* Sizes are monotonically non-decreasing across snapshots. *)
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  check_bool "snapshot sizes monotone" true (monotone sizes);
  check_int "final size" n (CS.size t)

let test_concurrent_snapshot_remove () =
  (* Writer removes keys in ascending order; snapshots must be
     suffixes. *)
  let t = CS.create () in
  let n = 10_000 in
  for i = 0 to n - 1 do
    CS.insert t i i
  done;
  let barrier = Atomic.make 0 in
  let arrive () =
    Atomic.incr barrier;
    while Atomic.get barrier < 2 do
      Domain.cpu_relax ()
    done
  in
  let remover =
    Domain.spawn (fun () ->
        arrive ();
        for i = 0 to n - 1 do
          ignore (CS.remove t i)
        done)
  in
  let snapshotter =
    Domain.spawn (fun () ->
        arrive ();
        for _ = 1 to 30 do
          let s = CS.snapshot t in
          let keys = List.sort compare (List.map fst (CS.to_list s)) in
          let size = List.length keys in
          if keys <> List.init size (fun i -> n - size + i) then
            failwith "snapshot is not a suffix under ordered removal"
        done;
        true)
  in
  Domain.join remover;
  check_bool "snapshots were suffixes" true (Domain.join snapshotter);
  check_int "emptied" 0 (CS.size t)

let test_fold_snapshot_consistent_total () =
  (* Concurrent value bumps preserve a per-snapshot invariant: with
     each writer moving value mass between two fixed keys using
     replace_if, every linearizable snapshot sees the same total. *)
  let t = CS.create () in
  CS.insert t 0 1000;
  CS.insert t 1 1000;
  let stop = Atomic.make false in
  let mover =
    Domain.spawn (fun () ->
        let rng = Rng.create 99 in
        while not (Atomic.get stop) do
          let src = Rng.next_int rng 2 in
          let dst = 1 - src in
          match (CS.lookup t src, CS.lookup t dst) with
          | Some a, Some b when a > 0 ->
              if CS.replace_if t src ~expected:a (a - 1) then begin
                (* Not atomic across keys; rebalance via a second CAS
                   loop so the grand total is eventually restored. *)
                let rec deposit () =
                  match CS.lookup t dst with
                  | Some cur -> if not (CS.replace_if t dst ~expected:cur (cur + 1)) then deposit ()
                  | None -> ()
                in
                ignore b;
                deposit ()
              end
          | _ -> ()
        done)
  in
  (* The mover's two steps are not jointly atomic, so totals in a
     snapshot can be off by at most the number of in-flight transfers
     (here: one). *)
  for _ = 1 to 200 do
    let total = CS.fold_snapshot (fun acc _ v -> acc + v) 0 t in
    if total < 1999 || total > 2001 then
      Alcotest.failf "snapshot total %d out of bounds" total
  done;
  Atomic.set stop true;
  Domain.join mover

(* Linearizability of snapshot itself: record concurrent histories
   where one op is "take a snapshot and report its size"; check them
   against a sequential spec where that op returns the model size. *)
let test_snapshot_size_linearizable () =
  let module L = struct
    type op = Ins of int * int | Rem of int | Snap_size

    let apply t = function
      | Ins (k, v) ->
          CS.insert t k v;
          -1
      | Rem k -> ( match CS.remove t k with Some v -> v | None -> -1)
      | Snap_size -> CS.size (CS.snapshot t)

    let seq_apply model = function
      | Ins (k, v) -> ((k, v) :: List.remove_assoc k model, -1)
      | Rem k -> (
          match List.assoc_opt k model with
          | Some v -> (List.remove_assoc k model, v)
          | None -> (model, -1))
      | Snap_size -> (model, List.length model)
  end in
  let rng = Rng.create 4242 in
  for _trial = 1 to 25 do
    let t = CS.create () in
    let clock = Atomic.make 0 in
    let script _d =
      List.init 5 (fun _ ->
          match Rng.next_int rng 5 with
          | 0 | 1 -> L.Ins (Rng.next_int rng 3, Rng.next_int rng 50)
          | 2 -> L.Rem (Rng.next_int rng 3)
          | _ -> L.Snap_size)
    in
    let scripts = List.init 3 script in
    let barrier = Atomic.make 0 in
    let run thread script =
      Atomic.incr barrier;
      while Atomic.get barrier < 3 do
        Domain.cpu_relax ()
      done;
      List.map
        (fun op ->
          let inv = Atomic.fetch_and_add clock 1 in
          let result = L.apply t op in
          let res = Atomic.fetch_and_add clock 1 in
          (thread, op, result, inv, res))
        script
    in
    let events =
      List.concat_map Domain.join
        (List.mapi (fun i s -> Domain.spawn (fun () -> run i s)) scripts)
    in
    (* Wing-Gong search over the custom op set. *)
    let threads =
      let tbl = Hashtbl.create 8 in
      List.iter
        (fun ((th, _, _, _, _) as e) ->
          Hashtbl.replace tbl th (e :: (try Hashtbl.find tbl th with Not_found -> [])))
        events;
      Hashtbl.fold
        (fun _ evs acc ->
          Array.of_list
            (List.sort (fun (_, _, _, a, _) (_, _, _, b, _) -> compare a b) evs)
          :: acc)
        tbl []
      |> Array.of_list
    in
    let total = List.length events in
    let visited = Hashtbl.create 256 in
    let rec dfs progress model done_count =
      done_count = total
      ||
      let key = (Array.to_list progress, List.sort compare model) in
      if Hashtbl.mem visited key then false
      else begin
        Hashtbl.add visited key ();
        let min_res = ref max_int in
        Array.iteri
          (fun i evs ->
            if progress.(i) < Array.length evs then begin
              let _, _, _, _, res = evs.(progress.(i)) in
              min_res := min !min_res res
            end)
          threads;
        let ok = ref false in
        Array.iteri
          (fun i evs ->
            if (not !ok) && progress.(i) < Array.length evs then begin
              let _, op, result, inv, _ = evs.(progress.(i)) in
              if inv <= !min_res then begin
                let model', expected = L.seq_apply model op in
                if expected = result then begin
                  progress.(i) <- progress.(i) + 1;
                  if dfs progress model' (done_count + 1) then ok := true
                  else progress.(i) <- progress.(i) - 1
                end
              end
            end)
          threads;
        !ok
      end
    in
    if not (dfs (Array.make (Array.length threads) 0) [] 0) then
      Alcotest.failf "snapshot history not linearizable (trial %d)" _trial;
    Hashtbl.reset visited
  done

let suite =
  [
    ("snapshot_isolates_original", `Quick, test_snapshot_isolates_original);
    ("snapshot_size_linearizable", `Slow, test_snapshot_size_linearizable);
    ("snapshot_isolates_snapshot", `Quick, test_snapshot_isolates_snapshot);
    ("snapshot_of_snapshot", `Quick, test_snapshot_of_snapshot);
    ("empty_snapshot", `Quick, test_empty_snapshot);
    ("snapshot_prefix_consistency", `Slow, test_snapshot_prefix_consistency);
    ("concurrent_snapshot_remove", `Slow, test_concurrent_snapshot_remove);
    ("fold_snapshot_consistent_total", `Slow, test_fold_snapshot_consistent_total);
  ]
