(** SplitMix64 pseudo-random number generator.

    A small, fast, splittable PRNG (Steele, Lea & Flood, OOPSLA'14) used
    for workload generation, skip-list level choice and depth sampling.
    Each domain owns its own state, so no synchronization is needed. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from [seed]. *)

val split : t -> t
(** [split t] derives an independent generator, advancing [t]. *)

val next : t -> int
(** [next t] returns the next 64-bit pseudo-random value truncated to
    OCaml's 63-bit [int] (non-negative). *)

val next_int : t -> int -> int
(** [next_int t bound] is uniform in [\[0, bound)].  [bound > 0]. *)

val next_int32 : t -> int
(** [next_int32 t] is uniform over the 32-bit range [\[0, 2^32)]. *)

val next_float : t -> float
(** [next_float t] is uniform in [\[0, 1)]. *)

val shuffle : t -> 'a array -> unit
(** [shuffle t a] permutes [a] in place (Fisher–Yates). *)

val mix64 : int -> int
(** [mix64 x] is the stateless SplitMix64 finalizer: a high-quality
    avalanche mix of [x], truncated to 63 bits. *)
