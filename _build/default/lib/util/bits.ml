let count_trailing_zeros x =
  if x = 0 then 63
  else begin
    let x = ref x and n = ref 0 in
    if !x land 0xFFFFFFFF = 0 then begin n := !n + 32; x := !x lsr 32 end;
    if !x land 0xFFFF = 0 then begin n := !n + 16; x := !x lsr 16 end;
    if !x land 0xFF = 0 then begin n := !n + 8; x := !x lsr 8 end;
    if !x land 0xF = 0 then begin n := !n + 4; x := !x lsr 4 end;
    if !x land 0x3 = 0 then begin n := !n + 2; x := !x lsr 2 end;
    if !x land 0x1 = 0 then n := !n + 1;
    !n
  end

let count_leading_zeros32 x =
  assert (x >= 0 && x <= 0xFFFFFFFF);
  if x = 0 then 32
  else begin
    let x = ref x and n = ref 0 in
    if !x land 0xFFFF0000 = 0 then begin n := !n + 16; x := !x lsl 16 end;
    if !x land 0xFF000000 = 0 then begin n := !n + 8; x := !x lsl 8 end;
    if !x land 0xF0000000 = 0 then begin n := !n + 4; x := !x lsl 4 end;
    if !x land 0xC0000000 = 0 then begin n := !n + 2; x := !x lsl 2 end;
    if !x land 0x80000000 = 0 then n := !n + 1;
    !n
  end

let popcount x =
  let rec go x acc = if x = 0 then acc else go (x lsr 1) (acc + (x land 1)) in
  go x 0

let is_power_of_two x = x > 0 && x land (x - 1) = 0

let next_power_of_two x =
  let rec go p = if p >= x then p else go (p lsl 1) in
  go 1

let log2_exact x =
  if not (is_power_of_two x) then invalid_arg "Bits.log2_exact";
  count_trailing_zeros x

let reverse_bits32 x =
  let x = ((x land 0x55555555) lsl 1) lor ((x lsr 1) land 0x55555555) in
  let x = ((x land 0x33333333) lsl 2) lor ((x lsr 2) land 0x33333333) in
  let x = ((x land 0x0F0F0F0F) lsl 4) lor ((x lsr 4) land 0x0F0F0F0F) in
  let x = ((x land 0x00FF00FF) lsl 8) lor ((x lsr 8) land 0x00FF00FF) in
  ((x land 0x0000FFFF) lsl 16) lor ((x lsr 16) land 0x0000FFFF)

let extract ~hash ~level ~width = (hash lsr level) land (width - 1)
