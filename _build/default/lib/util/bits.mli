(** Bit-manipulation helpers shared by the trie implementations.

    All functions operate on OCaml's native 63-bit integers but are
    primarily used on values already masked to 32 bits (the hash width
    of the tries, see {!Hashing}). *)

val count_trailing_zeros : int -> int
(** [count_trailing_zeros x] is the number of consecutive zero bits at
    the least-significant end of [x].  [count_trailing_zeros 0] is 63
    (every representable bit is zero). *)

val count_leading_zeros32 : int -> int
(** [count_leading_zeros32 x] counts leading zeros of [x] viewed as an
    unsigned 32-bit value.  [x] must fit in 32 bits. *)

val popcount : int -> int
(** [popcount x] is the number of set bits in [x]. *)

val is_power_of_two : int -> bool
(** [is_power_of_two x] holds iff [x] is a positive power of two. *)

val next_power_of_two : int -> int
(** [next_power_of_two x] is the smallest power of two [>= max 1 x]. *)

val log2_exact : int -> int
(** [log2_exact x] is [n] such that [x = 1 lsl n].
    @raise Invalid_argument if [x] is not a positive power of two. *)

val reverse_bits32 : int -> int
(** [reverse_bits32 x] reverses the lowest 32 bits of [x] (bit 0 swaps
    with bit 31, and so on).  Used by the split-ordered hash map. *)

val extract : hash:int -> level:int -> width:int -> int
(** [extract ~hash ~level ~width] selects [width] bits of [hash]
    starting at bit [level]:  [(hash lsr level) land (width' - 1)]
    where [width'] is the number of slots, i.e. [width] must be the
    slot count (a power of two), matching the paper's
    [(h >>> lev) & (cur.length - 1)]. *)
