lib/util/hashing.mli:
