lib/util/stats.mli:
