lib/util/bits.ml:
