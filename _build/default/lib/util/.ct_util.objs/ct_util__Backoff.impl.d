lib/util/backoff.ml: Rng
