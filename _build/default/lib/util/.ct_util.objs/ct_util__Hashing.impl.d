lib/util/hashing.ml: Char Int Rng String
