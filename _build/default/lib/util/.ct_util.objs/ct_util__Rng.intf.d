lib/util/rng.mli:
