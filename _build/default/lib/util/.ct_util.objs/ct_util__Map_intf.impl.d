lib/util/map_intf.ml: Hashing
