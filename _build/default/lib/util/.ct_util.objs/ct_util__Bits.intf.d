lib/util/bits.mli:
