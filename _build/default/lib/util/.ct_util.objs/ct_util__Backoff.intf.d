lib/util/backoff.mli:
