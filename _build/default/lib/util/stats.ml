type summary = {
  n : int;
  mean : float;
  stddev : float;
  cov : float;
  min : float;
  max : float;
  median : float;
}

let mean xs =
  if Array.length xs = 0 then invalid_arg "Stats.mean";
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let stddev xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.stddev";
  if n = 1 then 0.0
  else begin
    let m = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
    sqrt (ss /. float_of_int (n - 1))
  end

let percentile xs p =
  if Array.length xs = 0 then invalid_arg "Stats.percentile";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = int_of_float (ceil rank) in
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let summarize xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.summarize";
  let m = mean xs in
  let sd = stddev xs in
  let cov = if m = 0.0 then 0.0 else sd /. m in
  let mn = Array.fold_left min xs.(0) xs in
  let mx = Array.fold_left max xs.(0) xs in
  { n; mean = m; stddev = sd; cov; min = mn; max = mx; median = percentile xs 50.0 }

let warmed_up ?(window = 5) ?(threshold = 0.10) xs =
  let n = Array.length xs in
  if n < window then false
  else begin
    let tail = Array.sub xs (n - window) window in
    let s = summarize tail in
    s.cov < threshold
  end

(* Two-sided 97.5% t-distribution quantiles for small degrees of
   freedom, then the normal approximation (Georges et al. use the same
   cutoff structure). *)
let t_quantile_975 df =
  let table =
    [|
      12.706; 4.303; 3.182; 2.776; 2.571; 2.447; 2.365; 2.306; 2.262; 2.228;
      2.201; 2.179; 2.160; 2.145; 2.131; 2.120; 2.110; 2.101; 2.093; 2.086;
      2.080; 2.074; 2.069; 2.064; 2.060; 2.056; 2.052; 2.048; 2.045; 2.042;
    |]
  in
  if df <= 0 then nan
  else if df <= Array.length table then table.(df - 1)
  else 1.96

let confidence_interval95 xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.confidence_interval95";
  let m = mean xs in
  if n = 1 then (m, m)
  else begin
    let half = t_quantile_975 (n - 1) *. stddev xs /. sqrt (float_of_int n) in
    (m -. half, m +. half)
  end

let speedup ~baseline x =
  if x <= 0.0 then invalid_arg "Stats.speedup";
  baseline /. x
