(* SplitMix64 implemented over Int64 (native ints are 63-bit, the
   constants need all 64). Results are exposed as non-negative OCaml
   ints by dropping the sign bit. *)

type t = { mutable state : int64 }

let gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let mix64_i64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next_i64 t =
  t.state <- Int64.add t.state gamma;
  mix64_i64 t.state

let next t = Int64.to_int (next_i64 t) land max_int

let split t = { state = next_i64 t }

let next_int t bound =
  if bound <= 0 then invalid_arg "Rng.next_int";
  (* Rejection-free modulo is fine here: bound is tiny vs 2^62. *)
  next t mod bound

let next_int32 t = Int64.to_int (Int64.logand (next_i64 t) 0xFFFFFFFFL)

let next_float t = float_of_int (next t) *. (1.0 /. 4611686018427387904.0)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = next_int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let mix64 x = Int64.to_int (mix64_i64 (Int64.of_int x)) land max_int
