(** Hash-code preparation for the tries.

    The paper assumes a universal hash function producing uniformly
    distributed bits (Theorem 4.1 depends on it).  Raw OCaml hashes
    ([Hashtbl.hash], integer identity, ...) are not uniform, so the
    provided key modules pass them through the SplitMix64 finalizer.
    The maps themselves only truncate [H.hash] to {!hash_bits} bits,
    mirroring the paper's 32-bit JVM hash codes — which lets test-only
    key modules plant keys at chosen trie positions. *)

val hash_bits : int
(** Width of trie hash codes: 32. *)

val max_level : int
(** Deepest trie level that still selects bits: [hash_bits - 4 = 28]. *)

val mask : int
(** [2^hash_bits - 1]. *)

val mix : int -> int
(** [mix h] avalanches [h] and truncates to {!hash_bits} bits. *)

val mix_identity : int -> int
(** [mix_identity h] only truncates. *)

module type HASHABLE = sig
  type t

  val equal : t -> t -> bool

  val hash : t -> int
  (** Should be well distributed; combine with {!mix} when unsure. *)
end

module Int_key : HASHABLE with type t = int
(** Integers hashed through {!mix}. *)

module String_key : HASHABLE with type t = string
(** Strings hashed with FNV-1a then {!mix}. *)

module Bad_hash_int : HASHABLE with type t = int
(** Pathological: hash is the identity, so sequential keys collide in
    the low trie levels — exercises deep tries and narrow-node
    expansion chains.  Test-only. *)

module Constant_hash_int : HASHABLE with type t = int
(** Pathological: every key hashes to 42 — all keys end up in one
    collision list (LNode).  Test-only. *)

val fnv1a : string -> int
(** 32-bit FNV-1a string hash. *)
