let hash_bits = 32
let max_level = hash_bits - 4
let mask = (1 lsl hash_bits) - 1

let mix h = Rng.mix64 h land mask
let mix_identity h = h land mask

module type HASHABLE = sig
  type t

  val equal : t -> t -> bool
  val hash : t -> int
end

module Int_key = struct
  type t = int

  let equal = Int.equal
  let hash = mix
end

let fnv1a s =
  let h = ref 0x811C9DC5 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x01000193 land 0xFFFFFFFF)
    s;
  !h

module String_key = struct
  type t = string

  let equal = String.equal
  let hash s = mix (fnv1a s)
end

module Bad_hash_int = struct
  type t = int

  let equal = Int.equal
  let hash = mix_identity
end

module Constant_hash_int = struct
  type t = int

  let equal = Int.equal
  let hash _ = 42
end
