type t = {
  min_wait : int;
  max_wait : int;
  mutable wait : int;
  rng : Rng.t;
}

let create ?(min_wait = 16) ?(max_wait = 4096) () =
  if min_wait <= 0 || max_wait < min_wait then invalid_arg "Backoff.create";
  { min_wait; max_wait; wait = min_wait; rng = Rng.create 0x2545F4914F6CDD1D }

(* A data dependency the compiler cannot remove, so the loop really spins. *)
let consume = ref 0

let once t =
  let n = Rng.next_int t.rng t.wait in
  let acc = ref 0 in
  for i = 1 to n do
    acc := !acc + i
  done;
  consume := !acc;
  if t.wait < t.max_wait then t.wait <- t.wait * 2

let reset t = t.wait <- t.min_wait
