(** Exponential backoff for CAS retry loops.

    The paper's operations retry immediately; under heavy contention a
    bounded randomized backoff reduces cache-line ping-pong without
    affecting lock-freedom (some thread always makes progress).  Used
    only by the benchmark drivers and the striped table — the trie
    algorithms themselves retry bare, as in the paper. *)

type t

val create : ?min_wait:int -> ?max_wait:int -> unit -> t
(** [create ()] makes a backoff controller; [min_wait]/[max_wait] are
    spin iteration counts (defaults 16 and 4096). *)

val once : t -> unit
(** [once t] spins for the current window and doubles it (capped). *)

val reset : t -> unit
(** [reset t] shrinks the window back to [min_wait]. *)
