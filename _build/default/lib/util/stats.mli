(** Summary statistics for benchmark measurements.

    Mirrors the methodology in the paper (§5, citing Georges et al.):
    repeated measurements are summarized by mean, standard deviation
    and coefficient of variation; warmup is detected by the CoV
    dropping below a threshold. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  cov : float;  (** coefficient of variation, [stddev /. mean] *)
  min : float;
  max : float;
  median : float;
}

val summarize : float array -> summary
(** [summarize xs] computes summary statistics.
    @raise Invalid_argument on an empty array. *)

val mean : float array -> float
val stddev : float array -> float

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0,100\]]; linear interpolation on
    a sorted copy. *)

val warmed_up : ?window:int -> ?threshold:float -> float array -> bool
(** [warmed_up xs] holds when the CoV of the last [window] (default 5)
    samples is below [threshold] (default 0.10) — the ScalaMeter-style
    warmup criterion used by the paper's harness. *)

val confidence_interval95 : float array -> float * float
(** [confidence_interval95 xs] — a 95% confidence interval for the
    mean under the t-distribution (the methodology of Georges et al.,
    which the paper's harness follows).  For one sample the interval
    degenerates to the sample itself.
    @raise Invalid_argument on an empty array. *)

val speedup : baseline:float -> float -> float
(** [speedup ~baseline x] is [baseline /. x]; > 1 means faster than
    baseline.  @raise Invalid_argument if [x <= 0.]. *)
