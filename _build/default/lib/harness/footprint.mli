(** Memory footprint measurement (paper Figure 9).

    Two estimates per structure: the runtime's own transitive heap walk
    ([Obj.reachable_words], which handles sharing exactly), and the
    structure's analytic word-cost model ([footprint_words] from the
    shared map signature) as a cross-check. *)

val reachable_words : 'a -> int
(** [reachable_words v] — machine words transitively reachable from
    [v], computed by the OCaml runtime. *)

val words_to_kb : int -> float
(** Words to kilobytes on this platform (8-byte words on 64-bit). *)
