(** Timing with warmup detection and repetition, following the
    methodology the paper cites (Georges et al.): repeat until the
    coefficient of variation of recent runs drops below a threshold,
    then record a fixed number of measurements. *)

type result = {
  summary : Ct_util.Stats.summary;  (** seconds per run *)
  warmup_runs : int;
  ops : int;  (** operations per run, for per-op normalization *)
}

val time : (unit -> unit) -> float
(** [time f] — wall-clock seconds of one call. *)

val run :
  ?warmup_limit:int ->
  ?repetitions:int ->
  ?cov_threshold:float ->
  ops:int ->
  ?setup:(unit -> unit) ->
  (unit -> unit) ->
  result
(** [run ~ops f] warms [f] up (at most [warmup_limit] runs, default 10,
    stopping early when stable), then measures [repetitions] (default
    5) runs.  [setup] runs before every timed run, outside the clock.
    [ops] is the number of map operations one run performs. *)

val ns_per_op : result -> float
(** Mean nanoseconds per operation. *)

val mops : result -> float
(** Mean throughput in million operations per second. *)
