module Rng = Ct_util.Rng

type op = Lookup of int | Insert of int * int | Remove of int

type profile = {
  reads : int;
  inserts : int;
  removes : int;
  universe : int;
  skew : float;
}

let read_mostly = { reads = 95; inserts = 4; removes = 1; universe = 100_000; skew = 0.9 }
let churn = { reads = 50; inserts = 25; removes = 25; universe = 100_000; skew = 0.0 }
let write_heavy = { reads = 10; inserts = 60; removes = 30; universe = 100_000; skew = 0.5 }

let generate ?(seed = 0x7EACE) profile n =
  if profile.reads + profile.inserts + profile.removes <> 100 then
    invalid_arg "Trace.generate: percentages must sum to 100";
  if profile.universe <= 0 then invalid_arg "Trace.generate: empty universe";
  let rng = Rng.create seed in
  let keys =
    if profile.skew = 0.0 then
      Array.init n (fun _ -> Rng.next_int rng profile.universe)
    else
      Workload.zipf_keys ~seed:(seed lxor 0x5A5A) ~n ~universe:profile.universe
        profile.skew
  in
  Array.init n (fun i ->
      let dice = Rng.next_int rng 100 in
      let k = keys.(i) in
      if dice < profile.reads then Lookup k
      else if dice < profile.reads + profile.inserts then Insert (k, i)
      else Remove k)

type outcome = {
  hits : int;
  misses : int;
  updates : int;
  fresh : int;
  removed : int;
  elapsed : float;
}

module Replay (M : Ct_util.Map_intf.CONCURRENT_MAP with type key = int) = struct
  let run_slice t trace lo hi step =
    let hits = ref 0
    and misses = ref 0
    and updates = ref 0
    and fresh = ref 0
    and removed = ref 0 in
    let i = ref lo in
    while !i < hi do
      (match trace.(!i) with
      | Lookup k -> if M.lookup t k = None then incr misses else incr hits
      | Insert (k, v) -> if M.add t k v = None then incr fresh else incr updates
      | Remove k -> if M.remove t k <> None then incr removed);
      i := !i + step
    done;
    (!hits, !misses, !updates, !fresh, !removed)

  let prefill_keys t n =
    for k = 0 to n - 1 do
      M.insert t k k
    done

  let replay ?(prefill = 0) t trace =
    prefill_keys t prefill;
    let t0 = Unix.gettimeofday () in
    let hits, misses, updates, fresh, removed =
      run_slice t trace 0 (Array.length trace) 1
    in
    { hits; misses; updates; fresh; removed; elapsed = Unix.gettimeofday () -. t0 }

  let replay_parallel ?(prefill = 0) t ~domains trace =
    prefill_keys t prefill;
    let t0 = Unix.gettimeofday () in
    let results =
      Parallel.run_collect ~domains (fun d ->
          run_slice t trace d (Array.length trace) domains)
    in
    let elapsed = Unix.gettimeofday () -. t0 in
    List.fold_left
      (fun acc (h, m, u, f, r) ->
        {
          acc with
          hits = acc.hits + h;
          misses = acc.misses + m;
          updates = acc.updates + u;
          fresh = acc.fresh + f;
          removed = acc.removed + r;
        })
      { hits = 0; misses = 0; updates = 0; fresh = 0; removed = 0; elapsed }
      results
end
