lib/harness/workload.mli:
