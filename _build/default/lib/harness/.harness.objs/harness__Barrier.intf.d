lib/harness/barrier.mli:
