lib/harness/parallel.ml: Barrier Domain List Unix
