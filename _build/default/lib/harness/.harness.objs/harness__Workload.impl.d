lib/harness/workload.ml: Array Ct_util Fun
