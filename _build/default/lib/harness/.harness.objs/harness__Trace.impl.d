lib/harness/trace.ml: Array Ct_util List Parallel Unix Workload
