lib/harness/measure.ml: Array Ct_util List Unix
