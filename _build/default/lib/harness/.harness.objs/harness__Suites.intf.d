lib/harness/suites.mli: Ct_util
