lib/harness/barrier.ml: Atomic Domain
