lib/harness/suites.ml: Analysis Array Cachetrie Chm Ct_util Ctrie Ctrie_snap Footprint Hamts List Measure Parallel Printf Report Skiplist Trace Workload
