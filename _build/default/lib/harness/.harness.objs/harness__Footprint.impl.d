lib/harness/footprint.ml: Obj Sys
