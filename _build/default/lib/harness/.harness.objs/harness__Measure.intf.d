lib/harness/measure.mli: Ct_util
