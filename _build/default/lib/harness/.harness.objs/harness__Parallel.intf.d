lib/harness/parallel.mli:
