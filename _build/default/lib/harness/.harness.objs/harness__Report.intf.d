lib/harness/report.mli:
