lib/harness/footprint.mli:
