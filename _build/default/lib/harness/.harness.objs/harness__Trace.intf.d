lib/harness/trace.mli: Ct_util
