(** Plain-text table rendering for benchmark reports, mirroring the
    row/series layout of the paper's tables and figures. *)

val table : header:string list -> string list list -> string
(** [table ~header rows] — a column-aligned plain-text table. *)

val print_table : header:string list -> string list list -> unit

val fmt_ns : float -> string
(** Nanoseconds with 1 decimal, e.g. ["123.4"]. *)

val fmt_ms : float -> string
(** Seconds rendered as milliseconds with 2 decimals. *)

val fmt_kb : float -> string

val fmt_x : float -> string
(** Multiplier, e.g. ["2.3x"]. *)

val section : string -> unit
(** Print a banner heading. *)
