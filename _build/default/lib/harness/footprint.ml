let reachable_words v = Obj.reachable_words (Obj.repr v)
let words_to_kb w = float_of_int (w * (Sys.word_size / 8)) /. 1024.0
