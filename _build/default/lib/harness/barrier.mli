(** Sense-reversing spin barrier for domains.

    Used by the parallel benchmark driver so that all worker domains
    enter the timed section together, as the paper's multi-threaded
    benchmarks require. *)

type t

val create : int -> t
(** [create n] makes a barrier for [n] participants. *)

val await : t -> unit
(** [await t] blocks (spinning with [Domain.cpu_relax]) until all [n]
    participants have arrived.  Reusable across phases. *)
