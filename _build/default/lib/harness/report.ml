let table ~header rows =
  let all = header :: rows in
  let cols = List.fold_left (fun m r -> max m (List.length r)) 0 all in
  let widths = Array.make cols 0 in
  List.iter
    (List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)))
    all;
  let render_row r =
    String.concat "  "
      (List.mapi (fun i cell -> Printf.sprintf "%*s" widths.(i) cell) r)
  in
  let sep =
    String.concat "  " (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  String.concat "\n" (render_row header :: sep :: List.map render_row rows) ^ "\n"

let print_table ~header rows = print_string (table ~header rows)
let fmt_ns ns = Printf.sprintf "%.1f" ns
let fmt_ms s = Printf.sprintf "%.2f" (s *. 1000.0)
let fmt_kb kb = Printf.sprintf "%.1f" kb
let fmt_x x = Printf.sprintf "%.2fx" x

let section title =
  let bar = String.make (String.length title + 8) '=' in
  Printf.printf "\n%s\n==  %s  ==\n%s\n" bar title bar
