(** Closed-form key-depth distribution of a 16-way hash trie
    (paper Section 4.1, Theorems 4.1-4.4).

    Depth [d] means trie level [4d]; a key "occupies depth d" when its
    leaf hangs off an inner node chain of length [d]. *)

val p : int -> int -> float
(** [p d n] — Theorem 4.1: the probability that a given key occupies
    depth [d] in a trie holding [n+1] keys under a universal hash,
    [(1 - 16^-(d+1))^n - (1 - 16^-d)^n]. *)

val eta : int -> int -> float
(** [eta d n = p d n +. p (d+1) n] — probability mass of the adjacent
    depth pair starting at [d]. *)

val mu : int -> float
(** [mu n = max_d (eta d n)] — the most populated adjacent pair.
    Theorem 4.2: as [n → ∞] this stays within ⟨0.8745, 0.9746⟩. *)

val best_pair : int -> int
(** [best_pair n] — the depth [d] maximizing [eta d n]; the cache
    should target level [4 * d]. *)

val expected_depth : int -> float
(** [expected_depth n] — Theorem 4.3: [Σ_d d·p(d,n)], which is
    [log16 n + O(1)]. *)

val distribution : int -> max_depth:int -> float array
(** [distribution n ~max_depth] — [p 0 n .. p max_depth n]. *)

val distribution_levels : int -> max_depth:int -> float array
(** [distribution_levels n ~max_depth] — the distribution re-indexed
    to match the tries' [depth_histogram] convention, where a leaf
    hanging off the root has depth 1 (trie level 4): slot [D] holds
    [p (D-1) n], slot 0 is 0.  The paper's depth [d] corresponds to a
    leaf stored at trie level [4 * (d + 1)]. *)

val theorem42_interval : float * float
(** The paper's asymptotic bounds ⟨0.8745, 0.9746⟩ on [mu]. *)

val chi_square_distance : float array -> int array -> float
(** [chi_square_distance expected observed] — Pearson's statistic of an
    observed depth histogram against expected probabilities (both are
    normalized internally); used to compare empirical tries against
    Theorem 4.1. *)
