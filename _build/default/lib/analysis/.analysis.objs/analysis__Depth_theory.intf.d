lib/analysis/depth_theory.mli:
