lib/analysis/depth_theory.ml: Array
