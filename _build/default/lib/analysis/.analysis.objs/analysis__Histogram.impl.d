lib/analysis/histogram.ml: Array Buffer Printf String
