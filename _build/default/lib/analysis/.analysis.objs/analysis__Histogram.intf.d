lib/analysis/histogram.mli:
