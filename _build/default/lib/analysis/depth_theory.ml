(* Numerically stable evaluation of the paper's depth distribution:
   (1 - 16^-d)^n is computed as exp(n * log1p(-16^-d)). *)

let pow_term d n =
  (* (1 - 16^-d)^n, with d >= 0 and n >= 0. *)
  if d <= 0 then if n = 0 then 1.0 else 0.0
  else begin
    let x = 16.0 ** float_of_int (-d) in
    exp (float_of_int n *. log1p (-.x))
  end

let p d n =
  if d < 0 || n < 0 then invalid_arg "Depth_theory.p";
  pow_term (d + 1) n -. pow_term d n

let eta d n = p d n +. p (d + 1) n

(* Depths beyond log16 n + a few carry negligible mass; 16 covers every
   32-bit trie (8 levels) with margin. *)
let max_interesting_depth = 16

let best_pair n =
  let best = ref 0 and best_mass = ref neg_infinity in
  for d = 0 to max_interesting_depth - 1 do
    let m = eta d n in
    if m > !best_mass then begin
      best := d;
      best_mass := m
    end
  done;
  !best

let mu n = eta (best_pair n) n

let expected_depth n =
  let acc = ref 0.0 in
  for d = 0 to max_interesting_depth do
    acc := !acc +. (float_of_int d *. p d n)
  done;
  !acc

let distribution n ~max_depth = Array.init (max_depth + 1) (fun d -> p d n)

let distribution_levels n ~max_depth =
  Array.init (max_depth + 1) (fun d -> if d = 0 then 0.0 else p (d - 1) n)

let theorem42_interval = (0.8745, 0.9746)

let chi_square_distance expected observed =
  let n_obs = Array.fold_left ( + ) 0 observed in
  if n_obs = 0 then invalid_arg "Depth_theory.chi_square_distance: empty histogram";
  let total_e = Array.fold_left ( +. ) 0.0 expected in
  let len = min (Array.length expected) (Array.length observed) in
  let acc = ref 0.0 in
  for i = 0 to len - 1 do
    let e = expected.(i) /. total_e *. float_of_int n_obs in
    let o = float_of_int observed.(i) in
    if e > 1e-9 then acc := !acc +. (((o -. e) ** 2.0) /. e)
    else if o > 0.0 then acc := !acc +. o (* observed mass where none expected *)
  done;
  !acc
