lib/hamt/cow_map.ml: Atomic Ct_util Hamt
