lib/hamt/hamt.ml: Array Ct_util List Option Printf String
