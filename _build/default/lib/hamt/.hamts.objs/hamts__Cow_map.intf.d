lib/hamt/cow_map.mli: Ct_util
