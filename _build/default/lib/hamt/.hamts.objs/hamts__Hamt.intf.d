lib/hamt/hamt.mli: Ct_util
