(** Concurrent map built from a persistent {!Hamt} behind a single
    atomic root (copy-on-write).

    Reads are wait-free pointer chases with no per-node atomics —
    the fastest possible lookup path.  Every write path-copies the
    spine and CASes the root, so concurrent writers invalidate each
    other wholesale: write throughput collapses under contention.
    This is exactly the trade-off that motivated Ctries (share the
    trie, CAS per node) and it makes a revealing extra baseline for
    the paper's insert benchmarks.  Snapshots are a single atomic
    read: O(1) and trivially linearizable. *)

module Make (H : Ct_util.Hashing.HASHABLE) : sig
  include Ct_util.Map_intf.CONCURRENT_MAP with type key = H.t

  val snapshot : 'v t -> 'v t
  (** O(1) linearizable snapshot (one atomic read). *)

  val version : 'v t -> int
  (** Number of committed root swaps, for write-amplification
      diagnostics. *)
end
