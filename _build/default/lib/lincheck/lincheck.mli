(** Linearizability checking for concurrent maps (paper Section 4.2).

    The paper proves the cache-trie operations linearizable; this
    module checks the property empirically on bounded histories, for
    every map in the repository.  Worker domains run small operation
    scripts against a shared map while stamping each operation's
    invocation and response with a global atomic counter; a Wing-Gong
    style search then looks for a total order of the operations that
    (a) respects real-time order (op A before op B whenever A responded
    before B was invoked), (b) respects per-thread program order, and
    (c) is legal for the sequential map specification.

    Keys and values are small integers.  Timestamps only bound the
    real-time order (an operation's effect may occur anywhere between
    the two stamps), which makes the check sound: a history rejected
    here is genuinely non-linearizable. *)

type op =
  | Lookup of int
  | Insert of int * int  (** put, returns previous binding *)
  | Remove of int
  | Put_if_absent of int * int
  | Replace of int * int
  | Replace_if of int * int * int
      (** [Replace_if (k, expected, v)]: the CAS-style JDK
          [replace(k, old, new)]; the recorded result is [Some 1] on
          success and [Some 0] on failure. *)
  | Remove_if of int * int
      (** [Remove_if (k, expected)]: JDK [remove(k, v)], same result
          encoding as {!Replace_if}. *)

type event = {
  thread : int;
  op : op;
  result : int option;  (** value returned by the operation *)
  inv : int;  (** invocation timestamp *)
  res : int;  (** response timestamp *)
}

module type IMAP = Ct_util.Map_intf.CONCURRENT_MAP with type key = int

val record : (module IMAP) -> op list list -> event list
(** [record (module M) scripts] runs script [i] on domain [i] against
    one shared fresh map and returns all stamped events. *)

val check : event list -> bool
(** [check history] — true iff the history is linearizable with
    respect to the sequential map specification (bounded exhaustive
    search with memoization; intended for histories of ~25 ops). *)

val run_random :
  (module IMAP) ->
  seed:int ->
  threads:int ->
  ops_per_thread:int ->
  key_range:int ->
  bool
(** Generate random scripts, record a concurrent history, check it.
    Returns the verdict of {!check}. *)

val sequential_apply : (int * int) list -> op -> (int * int) list * int option
(** The sequential specification: apply [op] to a model association
    list, returning the new model and the expected result.  Exposed
    for the checker's own tests. *)
