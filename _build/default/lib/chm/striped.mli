(** Lock-striped chaining hash table (pre-JDK-8 [ConcurrentHashMap]
    style): an array of buckets guarded by a fixed set of mutexes,
    with lock-free (wait-free) reads through atomic bucket heads.

    Included as an ablation baseline: comparing it against
    {!Split_ordered} shows what the paper's "flat hash table" costs
    when writers block, especially during resize (which takes all
    stripes).  Reads never lock. *)

module Make (H : Ct_util.Hashing.HASHABLE) : sig
  include Ct_util.Map_intf.CONCURRENT_MAP with type key = H.t

  val bucket_count : 'v t -> int
end
