lib/chm/striped.ml: Array Atomic Ct_util Fun List Mutex Option
