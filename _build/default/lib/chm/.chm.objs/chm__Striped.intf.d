lib/chm/striped.mli: Ct_util
