lib/chm/split_ordered.mli: Ct_util
