lib/chm/split_ordered.ml: Array Atomic Ct_util List Option Printf String
