(* Lock-striped chaining hash table with wait-free reads: bucket heads
   are atomic immutable lists; writers take the stripe lock for their
   bucket, readers never lock.  Resize locks all stripes in order. *)

module Hashing = Ct_util.Hashing

let n_stripes = 16
let initial_buckets = 16
let load_factor = 4
let max_buckets = 1 lsl 22

module Make (H : Hashing.HASHABLE) = struct
  type key = H.t

  let name = "chm-striped"

  type 'v bucket = (int * key * 'v) list

  type 'v t = {
    mutable table : 'v bucket Atomic.t array;  (* replaced under all locks *)
    stripes : Mutex.t array;
    count : int Atomic.t;
  }

  let create () =
    {
      table = Array.init initial_buckets (fun _ -> Atomic.make []);
      stripes = Array.init n_stripes (fun _ -> Mutex.create ());
      count = Atomic.make 0;
    }

  let hash_of k = H.hash k land Hashing.mask
  let bucket_count t = Array.length t.table

  let with_stripe t h f =
    let m = t.stripes.(h land (n_stripes - 1)) in
    Mutex.lock m;
    Fun.protect ~finally:(fun () -> Mutex.unlock m) f

  let with_all_stripes t f =
    Array.iter Mutex.lock t.stripes;
    Fun.protect
      ~finally:(fun () -> Array.iter Mutex.unlock t.stripes)
      f

  let rec find_bucket entries h k =
    match entries with
    | [] -> None
    | (h', k', v') :: rest ->
        if h' = h && H.equal k' k then Some v' else find_bucket rest h k

  let lookup t k =
    let h = hash_of k in
    let table = t.table in
    let entries = Atomic.get table.(h land (Array.length table - 1)) in
    find_bucket entries h k

  let mem t k = Option.is_some (lookup t k)

  let resize_if_needed t =
    if
      Atomic.get t.count > Array.length t.table * load_factor
      && Array.length t.table < max_buckets
    then
      with_all_stripes t (fun () ->
          let old = t.table in
          if Atomic.get t.count > Array.length old * load_factor then begin
            let size = Array.length old * 2 in
            let fresh = Array.init size (fun _ -> Atomic.make []) in
            Array.iter
              (fun slot ->
                List.iter
                  (fun ((h, _, _) as e) ->
                    let b = fresh.(h land (size - 1)) in
                    Atomic.set b (e :: Atomic.get b))
                  (Atomic.get slot))
              old;
            t.table <- fresh
          end)

  type 'v mode = Always | If_absent | If_present | If_value of 'v

  let update t k v mode : 'v option =
    let h = hash_of k in
    let previous =
      with_stripe t h (fun () ->
          let table = t.table in
          let slot = table.(h land (Array.length table - 1)) in
          let entries = Atomic.get slot in
          let previous = find_bucket entries h k in
          let proceed =
            match (mode, previous) with
            | If_absent, Some _ -> false
            | (If_present | If_value _), None -> false
            | If_value expected, Some p -> p == expected
            | (Always | If_absent | If_present), _ -> true
          in
          if proceed then begin
            let without =
              if previous = None then entries
              else List.filter (fun (h', k', _) -> not (h' = h && H.equal k' k)) entries
            in
            Atomic.set slot ((h, k, v) :: without);
            if previous = None then Atomic.incr t.count
          end;
          previous)
    in
    resize_if_needed t;
    previous

  let insert t k v = ignore (update t k v Always)
  let add t k v = update t k v Always
  let put_if_absent t k v = update t k v If_absent
  let replace t k v = update t k v If_present

  let replace_if t k ~expected v =
    match update t k v (If_value expected) with
    | Some p -> p == expected
    | None -> false

  let remove_with t k cond : 'v option =
    let h = hash_of k in
    with_stripe t h (fun () ->
        let table = t.table in
        let slot = table.(h land (Array.length table - 1)) in
        let entries = Atomic.get slot in
        match find_bucket entries h k with
        | None -> None
        | Some v as previous ->
            if cond v then begin
              Atomic.set slot
                (List.filter (fun (h', k', _) -> not (h' = h && H.equal k' k)) entries);
              Atomic.decr t.count
            end;
            previous)

  let remove t k = remove_with t k (fun _ -> true)

  let remove_if t k ~expected =
    match remove_with t k (fun v -> v == expected) with
    | Some p -> p == expected
    | None -> false

  let fold f acc t =
    let table = t.table in
    Array.fold_left
      (fun acc slot ->
        List.fold_left (fun acc (_, k, v) -> f acc k v) acc (Atomic.get slot))
      acc table

  let iter f t = fold (fun () k v -> f k v) () t
  let size t = fold (fun n _ _ -> n + 1) 0 t
  let is_empty t = size t = 0
  let to_list t = fold (fun acc k v -> (k, v) :: acc) [] t

  (* Word-cost model: table array + atomic boxes + 5-word cells
     (cons 3 + tuple header... tuple of 3 = 4 words, cons = 3). *)
  let footprint_words t =
    let cells = Atomic.get t.count in
    1 + (3 * Array.length t.table) + (7 * cells) + n_stripes
end
