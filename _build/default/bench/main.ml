(* Benchmark driver regenerating every table and figure of the paper's
   evaluation (Section 5 + artifact appendix).

   Two layers:
   - Bechamel micro-benchmarks: one Test.make per structure for each
     single-threaded table/figure family (Figure 10 lookup/insert, the
     fast-path and collision micro-costs), OLS-fitted ns/op.
   - Harness sweeps (Harness.Suites): the full tables for Figures 9 and
     10, the multi-threaded Figures 11-13, the artifact histograms, the
     Section 4.1 theory check and the cache ablation.

   Usage:
     main.exe                 all experiments, quick scale
     main.exe full            all experiments, paper-like scale
     main.exe fig11 fig13     selected experiments (append "full")
   Experiments: fig9 fig10 fig11 fig12 fig13 hist theory ablation
                ablation-narrow mixed zipf remove trace bechamel all *)

open Bechamel
open Toolkit

module Hashing = Ct_util.Hashing
module Suites = Harness.Suites

module CT = Cachetrie.Make (Hashing.Int_key)
module Ctrie_map = Ctrie.Make (Hashing.Int_key)
module Chm_map = Chm.Split_ordered.Make (Hashing.Int_key)
module Skiplist_map = Skiplist.Make (Hashing.Int_key)

(* ------------------------- bechamel layer -------------------------- *)

(* Per-structure single-threaded micro benches on a prefilled map of
   [n] keys; each run performs [batch] operations. *)
let bench_n = 100_000
let batch = 1_000

let lookup_test (module M : Suites.IMAP) =
  let t = M.create () in
  let keys = Harness.Workload.shuffled_keys bench_n in
  Array.iter (fun k -> M.insert t k k) keys;
  let probes = Array.sub (Harness.Workload.lookup_order keys) 0 batch in
  (* Warm the trie cache. *)
  Array.iter (fun k -> ignore (M.lookup t k)) keys;
  Test.make ~name:M.name
    (Staged.stage (fun () ->
         for i = 0 to batch - 1 do
           ignore (Sys.opaque_identity (M.lookup t probes.(i)))
         done))

let insert_test (module M : Suites.IMAP) =
  let t = M.create () in
  let keys = Harness.Workload.shuffled_keys bench_n in
  Array.iter (fun k -> M.insert t k k) keys;
  (* Overwrite-style inserts on a warm structure keep the cost of one
     run stable across iterations (fresh-structure inserts are timed in
     the fig10 sweep instead). *)
  let probes = Array.sub (Harness.Workload.lookup_order keys) 0 batch in
  Test.make ~name:M.name
    (Staged.stage (fun () ->
         for i = 0 to batch - 1 do
           M.insert t probes.(i) i
         done))

let snapshot_test () =
  let module CS = Ctrie_snap.Make (Hashing.Int_key) in
  let t = CS.create () in
  let keys = Harness.Workload.shuffled_keys bench_n in
  Array.iter (fun k -> CS.insert t k k) keys;
  (* O(1) snapshots: cost must not scale with the 100k keys below. *)
  Test.make ~name:"ctrie-snapshot"
    (Staged.stage (fun () ->
         for _ = 1 to batch do
           ignore (Sys.opaque_identity (CS.snapshot t))
         done))

let collision_test () =
  let module C = Cachetrie.Make (Hashing.Constant_hash_int) in
  let t = C.create () in
  for i = 0 to 31 do
    C.insert t i i
  done;
  Test.make ~name:"cachetrie-lnode"
    (Staged.stage (fun () ->
         for i = 0 to batch - 1 do
           ignore (Sys.opaque_identity (C.lookup t (i land 31)))
         done))

let bechamel_groups () =
  [
    Test.make_grouped ~name:"fig10-lookup"
      (List.map lookup_test Suites.structures);
    Test.make_grouped ~name:"fig10-insert"
      (List.map insert_test Suites.structures);
    Test.make_grouped ~name:"micro" [ collision_test (); snapshot_test () ];
  ]

let run_bechamel () =
  Harness.Report.section "Bechamel micro-benchmarks (OLS ns per run)";
  Printf.printf "(one run = %d operations on a %d-key structure)\n\n" batch bench_n;
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  List.iter
    (fun group ->
      let raw = Benchmark.all cfg [ instance ] group in
      let results = Analyze.all ols instance raw in
      let rows = ref [] in
      Hashtbl.iter
        (fun name ols_result ->
          let ns_per_run =
            match Analyze.OLS.estimates ols_result with
            | Some (x :: _) -> x
            | _ -> nan
          in
          rows := [ name; Printf.sprintf "%.1f" (ns_per_run /. float_of_int batch) ] :: !rows)
        results;
      Harness.Report.print_table
        ~header:[ "benchmark"; "ns/op" ]
        (List.sort compare !rows);
      print_newline ())
    (bechamel_groups ())

(* ----------------------------- driver ------------------------------ *)

let experiments : (string * (Suites.scale -> unit)) list =
  [
    ("fig9", Suites.fig9_footprint);
    ("fig10", Suites.fig10_single_threaded);
    ("fig11", Suites.fig11_insert_high_contention);
    ("fig12", Suites.fig12_insert_low_contention);
    ("fig13", Suites.fig13_parallel_lookup);
    ("hist", Suites.histograms);
    ("theory", Suites.theory);
    ("ablation", Suites.ablation_cache);
    ("ablation-narrow", Suites.ablation_narrow);
    ("mixed", Suites.mixed_workload);
    ("zipf", Suites.zipf_lookup);
    ("remove", Suites.remove_throughput);
    ("trace", Suites.trace_replay);
    ("bechamel", fun _ -> run_bechamel ());
  ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let scale = if List.mem "full" args then Suites.Full else Suites.Quick in
  let selected =
    List.filter (fun a -> a <> "full" && a <> "all") args
  in
  let to_run =
    if selected = [] then experiments
    else
      List.filter_map
        (fun name ->
          match List.assoc_opt name experiments with
          | Some f -> Some (name, f)
          | None ->
              Printf.eprintf
                "unknown experiment %S (known: %s)\n" name
                (String.concat ", " (List.map fst experiments));
              exit 2)
        selected
  in
  Printf.printf "cache-tries benchmark driver — scale: %s, domains available: %d\n"
    (match scale with Suites.Quick -> "quick" | Suites.Full -> "full")
    (Harness.Parallel.available_domains ());
  List.iter (fun (_, f) -> f scale) to_run
