(* Concurrent memoization — a lookup-dominated workload (the paper
   notes lookup is the predominant dictionary operation) where the
   cache-trie acts as a shared memo table for an expensive pure
   function, here the Collatz stopping time.

   Domains process a stream of queries with a Zipf-skewed popularity;
   after warmup nearly every query is a single fast lookup.

     dune exec examples/memo_service.exe *)

module Memo = Cachetrie.Make (Ct_util.Hashing.Int_key)

let collatz_steps n0 =
  let rec go n steps =
    if n <= 1 then steps
    else if n land 1 = 0 then go (n / 2) (steps + 1)
    else go ((3 * n) + 1) (steps + 1)
  in
  go n0 0

let n_domains = 4
let queries_per_domain = 200_000
let universe = 100_000

let () =
  let memo : int Memo.t = Memo.create () in
  let computed = Array.make n_domains 0 in
  let hits = Array.make n_domains 0 in
  let dt =
    Harness.Parallel.run_timed ~domains:n_domains (fun d ->
        let queries =
          Harness.Workload.zipf_keys ~seed:(d + 1) ~n:queries_per_domain ~universe 0.9
        in
        Array.iter
          (fun q ->
            let q = q + 2 in
            match Memo.lookup memo q with
            | Some v -> assert (v = collatz_steps q) |> fun () -> hits.(d) <- hits.(d) + 1
            | None ->
                let v = collatz_steps q in
                (* First writer wins; a racing domain may have beaten
                   us, which is fine because the function is pure. *)
                ignore (Memo.put_if_absent memo q v);
                computed.(d) <- computed.(d) + 1)
          queries)
  in
  let total_q = n_domains * queries_per_domain in
  let computed_total = Array.fold_left ( + ) 0 computed in
  let hits_total = Array.fold_left ( + ) 0 hits in
  Printf.printf "%d queries in %.0f ms: %d memo hits (%.1f%%), %d computations, %d distinct keys\n"
    total_q (dt *. 1000.0) hits_total
    (100.0 *. float_of_int hits_total /. float_of_int total_q)
    computed_total (Memo.size memo);
  (* Every cached result is correct. *)
  Memo.iter (fun k v -> assert (v = collatz_steps k)) memo;
  print_endline "memo_service OK"
