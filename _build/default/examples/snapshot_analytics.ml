(* Consistent analytics over a live store — the workload the paper's
   conclusion singles out as the reason tries can beat hash tables: an
   O(1) linearizable snapshot (here on the snapshotting Ctrie
   baseline, PPoPP 2012) lets an analytics domain fold over a frozen,
   consistent view while writer domains keep mutating.

   Writers move "stock" between accounts with CAS loops, conserving
   the grand total; the analytics domain repeatedly snapshots and
   audits the invariant.  A weakly-consistent fold would be off by
   in-flight transfers; the snapshot fold sees each transfer's two
   legs as one atomic... almost: legs are separate CAS ops, so the
   audit tolerates exactly the writers' in-flight slack and nothing
   more.

     dune exec examples/snapshot_analytics.exe *)

module Store = Ctrie_snap.Make (Ct_util.Hashing.Int_key)
module Rng = Ct_util.Rng

let n_accounts = 1_000
let initial_balance = 100
let n_writers = 3
let transfers_per_writer = 30_000
let audits = 200

let () =
  let store : int Store.t = Store.create () in
  for acct = 0 to n_accounts - 1 do
    Store.insert store acct initial_balance
  done;
  let grand_total = n_accounts * initial_balance in
  let in_flight_slack = n_writers in

  let stop = Atomic.make false in
  let writers =
    List.init n_writers (fun w ->
        Domain.spawn (fun () ->
            let rng = Rng.create (w + 1) in
            for _ = 1 to transfers_per_writer do
              let src = Rng.next_int rng n_accounts in
              let dst = Rng.next_int rng n_accounts in
              if src <> dst then begin
                (* Withdraw one unit if funds allow... *)
                let withdrawn =
                  match Store.lookup store src with
                  | Some bal when bal > 0 -> Store.replace_if store src ~expected:bal (bal - 1)
                  | _ -> false
                in
                (* ...then deposit it (retrying until the CAS lands). *)
                if withdrawn then begin
                  let rec deposit () =
                    match Store.lookup store dst with
                    | Some bal ->
                        if not (Store.replace_if store dst ~expected:bal (bal + 1)) then
                          deposit ()
                    | None -> ()
                  in
                  deposit ()
                end
              end
            done))
  in

  (* Audit loop: every snapshot must conserve the total up to the
     writers' in-flight transfers. *)
  let worst = ref 0 in
  let done_audits = ref 0 in
  while !done_audits < audits && not (Atomic.get stop) do
    let snap = Store.snapshot store in
    let total = Store.fold (fun acc _ bal -> acc + bal) 0 snap in
    let drift = abs (total - grand_total) in
    if drift > !worst then worst := drift;
    if drift > in_flight_slack then begin
      Printf.printf "AUDIT FAILED: total %d (expected %d +/- %d)\n" total grand_total
        in_flight_slack;
      Atomic.set stop true
    end;
    incr done_audits
  done;
  List.iter Domain.join writers;
  assert (not (Atomic.get stop));

  (* Quiescent final audit must be exact. *)
  let final = Store.fold (fun acc _ bal -> acc + bal) 0 store in
  assert (final = grand_total);
  Printf.printf
    "%d audits over %d live snapshots: worst drift %d (allowed %d), final total %d OK\n"
    !done_audits !done_audits !worst in_flight_slack final;
  print_endline "snapshot_analytics OK"
