(* Parallel word-frequency counting — the classic concurrent-dictionary
   workload the paper's introduction motivates (aggregations whose hot
   keys are read-mostly once the dictionary warms up).

   A synthetic Zipf-distributed corpus is split across domains; each
   domain counts words into one shared cache-trie using lock-free
   read-modify-write loops (put_if_absent + replace_if).

     dune exec examples/word_count.exe *)

module Dict = Cachetrie.Make (Ct_util.Hashing.String_key)
module Rng = Ct_util.Rng

(* A vocabulary of plausible "words"; frequency follows Zipf(1.0), as
   natural language roughly does. *)
let vocabulary =
  Array.init 2_000 (fun i ->
      let rng = Rng.create (i + 17) in
      String.init (3 + Rng.next_int rng 7) (fun _ ->
          Char.chr (Char.code 'a' + Rng.next_int rng 26)))

let corpus_size = 400_000
let n_domains = 4

let make_corpus () =
  let draws =
    Harness.Workload.zipf_keys ~n:corpus_size ~universe:(Array.length vocabulary) 1.0
  in
  Array.map (fun i -> vocabulary.(i)) draws

(* Atomically add [delta] to a word's count. *)
let rec count (t : int Dict.t) word delta =
  match Dict.lookup t word with
  | None -> if Dict.put_if_absent t word delta <> None then count t word delta
  | Some v -> if not (Dict.replace_if t word ~expected:v (v + delta)) then count t word delta

let () =
  let corpus = make_corpus () in
  let t : int Dict.t = Dict.create () in
  let chunks = Harness.Workload.disjoint_ranges ~domains:n_domains ~total:corpus_size in
  let dt =
    Harness.Parallel.run_timed ~domains:n_domains (fun d ->
        Array.iter (fun i -> count t corpus.(i) 1) chunks.(d))
  in
  (* The total must be exact: no update may be lost. *)
  let total = Dict.fold (fun acc _ c -> acc + c) 0 t in
  assert (total = corpus_size);
  Printf.printf "counted %d words (%d distinct) in %.0f ms with %d domains\n" total
    (Dict.size t) (dt *. 1000.0) n_domains;
  (* Top 10 words. *)
  let all = Dict.fold (fun acc w c -> (c, w) :: acc) [] t in
  let top = List.filteri (fun i _ -> i < 10) (List.sort (fun a b -> compare b a) all) in
  print_endline "top words:";
  List.iter (fun (c, w) -> Printf.printf "  %-10s %6d\n" w c) top;
  print_endline "word_count OK"
