examples/memo_service.mli:
