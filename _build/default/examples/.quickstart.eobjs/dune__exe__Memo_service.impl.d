examples/memo_service.ml: Array Cachetrie Ct_util Harness Printf
