examples/word_count.ml: Array Cachetrie Char Ct_util Harness List Printf String
