examples/quickstart.mli:
