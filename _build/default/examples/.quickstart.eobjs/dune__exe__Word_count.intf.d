examples/word_count.mli:
