examples/snapshot_analytics.ml: Atomic Ct_util Ctrie_snap Domain List Printf
