examples/quickstart.ml: Cachetrie Ct_util Domain List Printf
