examples/dedup_membership.mli:
