examples/dedup_membership.ml: Array Cachetrie Ct_util Harness List Printf Stack
